// Package engine implements the paper's rule execution module: it maintains
// the current context from sensor events, re-evaluates the registered rule
// objects whenever the context changes, arbitrates rules that want the same
// device with the context-attached priority table, and dispatches the
// winning actions to the appliances.
//
// Evaluation is incremental. Every context write marks the dependency keys
// it invalidates (core.NumberDirtyKeys and friends) in a dirty set, and an
// evaluation pass only re-evaluates the rules whose dependency set
// (core.CondDeps, inverted-indexed by registry.DB.ByDep) intersects it —
// plus the time-dependent rules whenever the clock has advanced, and rules
// added since the last pass. Per-rule readiness is cached between passes, so
// arbitration reconciles only the devices whose ready-set actually changed,
// or whose contextual priority order was touched by the dirty keys. The
// naive evaluator that re-walks every rule on every event is retained behind
// WithFullScan as the oracle for equivalence tests and benchmarks.
//
// Arbitration is reconciliation-style: for every device the engine tracks
// which rule currently "owns" it (the highest-priority rule whose condition
// holds). When ownership changes — a higher-priority user's rule becomes
// ready, or the current owner's condition lapses — the new owner's action is
// dispatched. This reproduces the hand-offs of the paper's Fig. 1 time
// chart (stereo: Tom → Emily; TV: Alan → Emily).
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/registry"
)

// Dispatcher applies a rule action to a device. The home server wires this
// to UPnP control; tests plug in fakes.
type Dispatcher func(ref core.DeviceRef, action core.Action) error

// BatchDispatcher applies all actions fired by one evaluation pass as a
// single batch, recording any dispatch error in each entry's Err field in
// place. It is invoked outside the engine lock, at most once per pass, and
// must not return before every entry has been dispatched (the engine appends
// the batch to its log when it returns). The fleet hub wires this to a
// dispatch worker pool so a pass's actions go out in parallel.
type BatchDispatcher func(batch []Fired)

// Fired records one dispatched action for the scenario log.
type Fired struct {
	Time       time.Time
	Rule       *core.Rule
	Suppressed []*core.Rule // ready rules that lost arbitration
	Err        error        // dispatch error, if any
}

func (f Fired) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  %-24s %-22s (rule %s, owner %s)",
		f.Time.Format("15:04"), f.Rule.Device.Key(), f.Rule.Action.String(), f.Rule.ID, f.Rule.Owner)
	if len(f.Suppressed) > 0 {
		names := make([]string, len(f.Suppressed))
		for i, r := range f.Suppressed {
			names[i] = r.Owner
		}
		fmt.Fprintf(&sb, " [over %s]", strings.Join(names, ","))
	}
	if f.Err != nil {
		fmt.Fprintf(&sb, " ERROR: %v", f.Err)
	}
	return sb.String()
}

// orderDep caches the dependency set of one contextual priority order, so a
// pass can tell whether the dirty keys may have flipped which order applies.
type orderDep struct {
	device core.DeviceRef
	deps   core.DepSet
}

// Engine is the rule execution module.
type Engine struct {
	mu            sync.Mutex
	ctx           *core.Context
	db            *registry.DB
	priorities    *conflict.Table
	dispatch      Dispatcher
	batchDispatch BatchDispatcher // when set, replaces the per-action dispatcher
	now           func() time.Time

	fullScan bool // evaluate every rule on every pass (oracle mode)

	passes  uint64 // evaluation passes run
	batches uint64 // dispatch batches handed out (≤ one per pass)
	logCap  int    // keep at most this many log entries; 0 = unbounded

	// Incremental-evaluation state (unused in full-scan mode).
	dirty      map[string]struct{}   // dependency keys written since the last pass
	allDirty   bool                  // re-evaluate everything on the next pass
	dbGen      uint64                // registry generation at the last pass
	tblGen     uint64                // priority-table generation at the last pass
	tblDeps    []orderDep            // cached contextual-order dependencies for tblGen
	lastEvalAt time.Time             // clock reading of the last pass
	timeRules  []*core.Rule          // cached db.TimeDependent() for dbGen
	known      map[string]*core.Rule // rules the engine has synced from the db
	ready      map[string]bool       // rule ID → readiness at the last pass
	readyByDev map[string]map[string]*core.Rule
	refs       map[string]core.DeviceRef // device key → reference

	owners map[string]string // device key → owning rule ID
	log    []Fired
	onFire func(Fired)
}

// Option configures the engine.
type Option interface{ apply(*Engine) }

type optionFunc func(*Engine)

func (f optionFunc) apply(e *Engine) { f(e) }

// WithEventTTL sets how long arrival events stay fresh in the context.
func WithEventTTL(ttl time.Duration) Option {
	return optionFunc(func(e *Engine) { e.ctx.EventTTL = ttl })
}

// WithOnFire installs a callback invoked (outside the engine lock) after
// every dispatched action.
func WithOnFire(fn func(Fired)) Option {
	return optionFunc(func(e *Engine) { e.onFire = fn })
}

// WithBatchDispatcher routes each pass's fired actions through fn as one
// batch instead of the per-action Dispatcher. fn must fill every entry's Err
// before returning; the engine then appends the whole batch to its log under
// a single lock acquisition.
func WithBatchDispatcher(fn BatchDispatcher) Option {
	return optionFunc(func(e *Engine) { e.batchDispatch = fn })
}

// WithLogLimit caps the fired-action log at roughly n entries, discarding the
// oldest. A fleet-scale hub sets a cap so millions of long-lived homes do not
// grow their logs without bound; the default (0) keeps everything.
func WithLogLimit(n int) Option {
	return optionFunc(func(e *Engine) { e.logCap = n })
}

// WithFullScan disables incremental evaluation: every pass re-evaluates
// every registered rule and re-arbitrates every device, exactly as the
// paper's prototype does. Tests use a full-scan engine as the oracle the
// incremental evaluator must agree with; benchmarks use it as the baseline.
func WithFullScan() Option {
	return optionFunc(func(e *Engine) { e.fullScan = true })
}

// New builds an engine over a rule database and priority table. now supplies
// the (simulated or wall) clock; dispatch applies actions.
func New(db *registry.DB, priorities *conflict.Table, now func() time.Time, dispatch Dispatcher, opts ...Option) *Engine {
	e := &Engine{
		ctx:        core.NewContext(now()),
		db:         db,
		priorities: priorities,
		dispatch:   dispatch,
		now:        now,
		dirty:      make(map[string]struct{}),
		allDirty:   true,
		known:      make(map[string]*core.Rule),
		ready:      make(map[string]bool),
		readyByDev: make(map[string]map[string]*core.Rule),
		refs:       make(map[string]core.DeviceRef),
		owners:     make(map[string]string),
	}
	for _, o := range opts {
		o.apply(e)
	}
	return e
}

// Context returns a snapshot of the current context.
func (e *Engine) Context() *core.Context {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ctx.Clone()
}

// Log returns the fired-action log.
func (e *Engine) Log() []Fired {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Fired, len(e.log))
	copy(out, e.log)
	return out
}

// Passes returns the number of evaluation passes the engine has run. The
// fleet hub reads it to measure ingestion coalescing (events handled per
// pass), and tests use it to pin down "a burst is one pass" semantics.
func (e *Engine) Passes() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.passes
}

// DispatchBatches returns how many dispatch batches the engine has handed
// out. Every pass dispatches its fired set as at most one batch, so this is
// bounded by Passes.
func (e *Engine) DispatchBatches() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batches
}

// Owners returns a snapshot of the device → owning-rule-ID map.
func (e *Engine) Owners() map[string]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]string, len(e.owners))
	for k, v := range e.owners {
		out[k] = v
	}
	return out
}

// SetFavorites registers a user's favourite keywords ("my favorite movie").
// Favourites are configuration rather than sensor state, so the next pass
// re-evaluates everything.
func (e *Engine) SetFavorites(user string, keywords []string) {
	e.mu.Lock()
	e.ctx.Favorites[user] = append([]string(nil), keywords...)
	e.allDirty = true
	e.mu.Unlock()
	e.Tick()
}

// SetUsers registers the known users (needed by nobody/everyone).
func (e *Engine) SetUsers(users []string) {
	e.mu.Lock()
	e.ctx.Users = append([]string(nil), users...)
	e.allDirty = true
	e.mu.Unlock()
	e.Tick()
}

// ---- event entry points (wired to UPnP event subscriptions) ----

// HandleDeviceEvent ingests a UPnP property-change event from a device: the
// server passes the device's identity and the changed variables; the engine
// maps them onto context keys, marks the matching dependency keys dirty, and
// re-evaluates.
func (e *Engine) HandleDeviceEvent(deviceType, friendlyName, location string, vars map[string]string) {
	e.mu.Lock()
	e.ingestLocked(deviceType, friendlyName, location, vars)
	e.evaluateLocked()
}

// Ingest applies a device event's context writes and dirty-key marks without
// running an evaluation pass. The fleet hub uses it to coalesce an event
// burst: ingest every event of the burst, then run a single Tick, which
// evaluates all the accumulated dirty keys in one pass.
func (e *Engine) Ingest(deviceType, friendlyName, location string, vars map[string]string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ingestLocked(deviceType, friendlyName, location, vars)
}

func (e *Engine) ingestLocked(deviceType, friendlyName, location string, vars map[string]string) {
	for name, value := range vars {
		switch device.KindOfVar(name) {
		case device.VarKindSpecial:
			e.applySpecialLocked(name, value)
		case device.VarKindNumber:
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
					e.ctx.Numbers[key] = f
					e.markDirtyLocked(core.NumberDirtyKeys(key))
				}
			}
		case device.VarKindBool:
			b := value == "1" || value == "true"
			for _, key := range device.ContextKeys(deviceType, friendlyName, location, name) {
				e.ctx.Bools[key] = b
				e.markDirtyLocked(core.BoolDirtyKeys(key))
			}
		default:
			// String vars (mode) are not observable by CADEL conditions in
			// this version; ignored.
		}
	}
}

func (e *Engine) markDirtyLocked(keys []string) {
	for _, k := range keys {
		e.dirty[k] = struct{}{}
	}
}

func (e *Engine) applySpecialLocked(name, value string) {
	switch {
	case strings.HasPrefix(name, "presence-"):
		user := strings.TrimPrefix(name, "presence-")
		e.ctx.Locations[user] = value
		e.markDirtyLocked(core.LocationDirtyKeys(user))
	case name == "event":
		// "person|event|seq"
		parts := strings.SplitN(value, "|", 3)
		if len(parts) >= 2 && parts[0] != "" {
			e.ctx.Now = e.now()
			e.ctx.RecordEvent(parts[0], parts[1])
			e.markDirtyLocked([]string{core.EventDepKey(parts[1])})
		}
	case name == "programs":
		e.ctx.Programs = device.DecodePrograms(value)
		e.markDirtyLocked([]string{core.ProgramsDepKey})
	}
}

// Tick re-evaluates at the current time; the server calls it after advancing
// the simulation clock so time windows, duration conditions and event TTLs
// progress.
func (e *Engine) Tick() {
	e.mu.Lock()
	e.evaluateLocked()
}

// evaluateLocked runs one reconciliation pass. It is entered with e.mu held
// and releases it before invoking dispatch callbacks. The pass's fired set is
// dispatched as a single batch — one BatchDispatcher call (or one loop over
// the per-action Dispatcher) followed by one lock re-acquisition to append
// the whole batch to the log — never a lock round-trip per action.
func (e *Engine) evaluateLocked() {
	e.ctx.Now = e.now()
	e.passes++
	var fired []Fired
	if e.fullScan {
		fired = e.fullScanPassLocked()
	} else {
		fired = e.incrementalPassLocked()
	}
	if len(fired) > 0 {
		e.batches++
	}

	batchDispatch := e.batchDispatch
	dispatch := e.dispatch
	onFire := e.onFire
	e.mu.Unlock()

	if len(fired) == 0 {
		return
	}
	if batchDispatch != nil {
		batchDispatch(fired)
	} else if dispatch != nil {
		for i := range fired {
			fired[i].Err = dispatch(fired[i].Rule.Device, fired[i].Rule.Action)
		}
	}

	e.mu.Lock()
	e.log = append(e.log, fired...)
	if e.logCap > 0 && len(e.log) > 2*e.logCap {
		// Trim with hysteresis so a capped log costs one copy per logCap
		// appends, not one per fire.
		e.log = append(e.log[:0:0], e.log[len(e.log)-e.logCap:]...)
	}
	e.mu.Unlock()

	if onFire != nil {
		for i := range fired {
			onFire(fired[i])
		}
	}
}

// maintainHoldsLocked updates the context's duration-hold marks for one
// rule's condition tree.
func (e *Engine) maintainHoldsLocked(r *core.Rule) {
	core.WalkCond(r.Cond, func(c core.Condition) {
		d, ok := c.(*core.Duration)
		if !ok {
			return
		}
		if d.Inner.Eval(e.ctx) {
			e.ctx.MarkHeld(d.Key)
		} else {
			e.ctx.ClearHeld(d.Key)
		}
	})
}

// fullScanPassLocked is the naive evaluator: walk every rule, rebuild every
// device's ready-set, re-arbitrate every device.
func (e *Engine) fullScanPassLocked() []Fired {
	clear(e.dirty) // tracked but unused in oracle mode
	rules := e.db.All()

	// Maintain duration holds.
	for _, r := range rules {
		e.maintainHoldsLocked(r)
	}

	// Group ready rules by device.
	ready := make(map[string][]*core.Rule)
	refs := make(map[string]core.DeviceRef)
	for _, r := range rules {
		if r.Ready(e.ctx) {
			key := r.Device.Key()
			ready[key] = append(ready[key], r)
			refs[key] = r.Device
		}
	}

	// Reconcile ownership per device.
	var fired []Fired
	keys := make([]string, 0, len(ready))
	for key := range ready {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		ranked := e.priorities.Arbitrate(refs[key], e.ctx, ready[key])
		winner := ranked[0]
		if e.owners[key] == winner.ID {
			continue // already in effect
		}
		e.owners[key] = winner.ID
		fired = append(fired, Fired{
			Time:       e.ctx.Now,
			Rule:       winner,
			Suppressed: ranked[1:],
		})
	}
	// Devices whose owning rule lapsed lose their owner; the device keeps
	// its last state (the paper defines no un-do semantics).
	for key := range e.owners {
		if _, still := ready[key]; !still {
			delete(e.owners, key)
		}
	}
	return fired
}

// incrementalPassLocked re-evaluates only the rules the dirty keys (plus
// time, plus rule churn) can have affected, then re-arbitrates only the
// devices whose ready-set changed or whose contextual priority order was
// touched.
func (e *Engine) incrementalPassLocked() []Fired {
	nowChanged := !e.ctx.Now.Equal(e.lastEvalAt)
	e.lastEvalAt = e.ctx.Now

	// Device keys whose ready-set changed this pass.
	changed := make(map[string]struct{})

	// Sync rule additions and removals with the database.
	var added []*core.Rule
	if g := e.db.Generation(); g != e.dbGen {
		e.dbGen = g
		e.timeRules = e.db.TimeDependent()
		all := e.db.All()
		current := make(map[string]*core.Rule, len(all))
		for _, r := range all {
			current[r.ID] = r
			// A pointer mismatch means the ID was removed and re-registered
			// with a different rule between passes: evict the stale cached
			// state below, then treat the replacement as newly added.
			if known, ok := e.known[r.ID]; !ok || known != r {
				added = append(added, r)
			}
		}
		for id, r := range e.known {
			if current[id] == r {
				continue
			}
			delete(e.known, id)
			delete(e.ready, id)
			key := r.Device.Key()
			if m := e.readyByDev[key]; m != nil {
				if _, was := m[id]; was {
					delete(m, id)
					changed[key] = struct{}{}
				}
			}
		}
		for _, r := range added {
			e.known[r.ID] = r
		}
	}

	// Collect the candidate rules to re-evaluate.
	candidates := make(map[string]*core.Rule)
	if e.allDirty {
		for id, r := range e.known {
			candidates[id] = r
		}
	} else {
		// The index can return rules added to the db after this pass's
		// generation sync; only evaluate rules the sync has seen (the rest
		// are picked up as added on the next pass), or cached state could
		// outlive a rule the eviction loop never knew about.
		for key := range e.dirty {
			for _, r := range e.db.ByDep(key) {
				if e.known[r.ID] == r {
					candidates[r.ID] = r
				}
			}
		}
		if nowChanged {
			for _, r := range e.timeRules {
				if e.known[r.ID] == r {
					candidates[r.ID] = r
				}
			}
		}
		for _, r := range added {
			candidates[r.ID] = r
		}
	}

	// Maintain duration holds before readiness: all duration rules are
	// time-dependent, so whenever time advanced they are all candidates and
	// the hold marks stay exactly as the full scan would leave them.
	for _, r := range candidates {
		e.maintainHoldsLocked(r)
	}

	// Re-evaluate candidates and diff cached readiness.
	for id, r := range candidates {
		rdy := r.Ready(e.ctx)
		if rdy == e.ready[id] {
			continue
		}
		e.ready[id] = rdy
		key := r.Device.Key()
		if rdy {
			m := e.readyByDev[key]
			if m == nil {
				m = make(map[string]*core.Rule)
				e.readyByDev[key] = m
				e.refs[key] = r.Device
			}
			m[id] = r
		} else if m := e.readyByDev[key]; m != nil {
			delete(m, id)
		}
		changed[key] = struct{}{}
	}

	// Decide which devices to re-arbitrate: those whose ready-set changed,
	// plus those whose contextual priority order may have flipped.
	arbitrate := changed
	if g := e.priorities.Generation(); g != e.tblGen {
		e.tblGen = g
		e.tblDeps = e.tblDeps[:0]
		for _, o := range e.priorities.Orders() {
			if o.Context != nil {
				e.tblDeps = append(e.tblDeps, orderDep{device: o.Device, deps: core.CondDeps(o.Context)})
			}
		}
		// The table itself changed: every owned or ready device may rank
		// differently now.
		for key, m := range e.readyByDev {
			if len(m) > 0 {
				arbitrate[key] = struct{}{}
			}
		}
	} else {
		for _, od := range e.tblDeps {
			touched := e.allDirty || (od.deps.Time && nowChanged) || od.deps.Intersects(e.dirty)
			if !touched {
				continue
			}
			for key, m := range e.readyByDev {
				if len(m) > 0 && od.device.Matches(e.refs[key]) {
					arbitrate[key] = struct{}{}
				}
			}
		}
	}

	// Reconcile ownership for the affected devices, in sorted key order so
	// the fired log is deterministic (and identical to the full scan's).
	var fired []Fired
	keys := make([]string, 0, len(arbitrate))
	for key := range arbitrate {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		m := e.readyByDev[key]
		if len(m) == 0 {
			delete(e.owners, key)
			delete(e.readyByDev, key)
			delete(e.refs, key)
			continue
		}
		list := make([]*core.Rule, 0, len(m))
		for _, r := range m {
			list = append(list, r)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
		ranked := e.priorities.Arbitrate(e.refs[key], e.ctx, list)
		winner := ranked[0]
		if e.owners[key] == winner.ID {
			continue
		}
		e.owners[key] = winner.ID
		fired = append(fired, Fired{
			Time:       e.ctx.Now,
			Rule:       winner,
			Suppressed: ranked[1:],
		})
	}

	clear(e.dirty)
	e.allDirty = false
	return fired
}
