// Package home simulates the ordinary-home environment of Sect. 3.1: rooms
// with temperature/humidity/lighting state, users moving between rooms with
// RFID presence, a broadcast schedule feeding the EPG tuner, and the
// information appliances of the living-room example — all published as
// virtual UPnP devices. Its physics step lets air conditioners actually pull
// room climate toward their targets so rules close the loop end to end.
package home

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/upnp"
)

// RoomConfig describes a room's initial climate.
type RoomConfig struct {
	Name        string
	Temperature float64
	Humidity    float64
	Dark        bool
}

// ApplianceKind selects a device template.
type ApplianceKind string

// Appliance kinds available to configs.
const (
	KindTV             ApplianceKind = "tv"
	KindStereo         ApplianceKind = "stereo"
	KindVideoRecorder  ApplianceKind = "video recorder"
	KindAirConditioner ApplianceKind = "air conditioner"
	KindLight          ApplianceKind = "light"
	KindAlarm          ApplianceKind = "alarm"
	KindDoorLock       ApplianceKind = "door lock"
)

// ApplianceConfig places one appliance in a room. Name defaults per kind
// ("floor lamp" and "fluorescent light" are Lights with explicit names).
type ApplianceConfig struct {
	Kind ApplianceKind
	Name string
	Room string
}

// Broadcast schedules a programme on air during [StartMin, EndMin) minutes
// of the simulated day.
type Broadcast struct {
	StartMin int
	EndMin   int
	Program  core.Program
}

// Config describes the whole simulated home.
type Config struct {
	Start      time.Time
	Rooms      []RoomConfig
	Users      []string
	Appliances []ApplianceConfig
	Schedule   []Broadcast
	// Outdoor climate the rooms drift toward when unconditioned.
	OutdoorTemperature float64
	OutdoorHumidity    float64
}

// DefaultConfig reproduces the paper's living-room household: Tom, Alan and
// Emily; stereo, TV, video recorder, fluorescent light, floor lamp and air
// conditioner in the living room; a light and door at the hall/entrance.
// The broadcast schedule airs a baseball game from 18:00 and Emily's
// favourite movie from 19:00 (Fig. 1's t2/t3 windows).
func DefaultConfig() Config {
	return Config{
		Start: time.Date(2005, 3, 7, 17, 0, 0, 0, time.UTC),
		Rooms: []RoomConfig{
			{Name: "living room", Temperature: 24, Humidity: 55},
			{Name: "hall", Temperature: 22, Humidity: 50, Dark: true},
			{Name: "kitchen", Temperature: 23, Humidity: 50},
		},
		Users: []string{"tom", "alan", "emily"},
		Appliances: []ApplianceConfig{
			{Kind: KindStereo, Room: "living room"},
			{Kind: KindTV, Room: "living room"},
			{Kind: KindVideoRecorder, Room: "living room"},
			{Kind: KindLight, Name: "fluorescent light", Room: "living room"},
			{Kind: KindLight, Name: "floor lamp", Room: "living room"},
			{Kind: KindAirConditioner, Room: "living room"},
			{Kind: KindLight, Name: "light", Room: "hall"},
			{Kind: KindAlarm, Room: "hall"},
			{Kind: KindDoorLock, Name: "entrance door", Room: "entrance"},
		},
		Schedule: []Broadcast{
			{StartMin: 18 * 60, EndMin: 21 * 60, Program: core.Program{
				Title: "Tigers vs Giants", Category: "baseball game", Keywords: []string{"tigers", "giants"},
			}},
			{StartMin: 19 * 60, EndMin: 21 * 60, Program: core.Program{
				Title: "Roman Holiday", Category: "movie", Keywords: []string{"roman holiday", "audrey hepburn"},
			}},
			{StartMin: 0, EndMin: 24 * 60, Program: core.Program{
				Title: "All Day News", Category: "news",
			}},
		},
		OutdoorTemperature: 29,
		OutdoorHumidity:    70,
	}
}

// room is the mutable simulation state of one room.
type room struct {
	cfg         RoomConfig
	temperature float64
	humidity    float64
	dark        bool
	thermometer *device.Unit
	hygrometer  *device.Unit
	lightSensor *device.Unit
	aircon      *device.Unit // nil when the room has none
}

// Home is the running simulated environment.
type Home struct {
	Clock *SimClock

	cfg      Config
	host     *upnp.DeviceHost
	mu       sync.Mutex
	rooms    map[string]*room
	units    map[string]*device.Unit // appliance units by "room/name"
	presence *device.Unit
	epg      *device.Unit
	airing   string // last published EPG encoding
	location map[string]string
}

// New builds the home: it starts a device host on the network and publishes
// every sensor and appliance.
func New(network *upnp.Network, cfg Config) (*Home, error) {
	if len(cfg.Rooms) == 0 {
		return nil, errors.New("home: config needs at least one room")
	}
	host, err := upnp.NewDeviceHost(network)
	if err != nil {
		return nil, err
	}
	h := &Home{
		Clock:    NewSimClock(cfg.Start),
		cfg:      cfg,
		host:     host,
		rooms:    make(map[string]*room, len(cfg.Rooms)),
		units:    make(map[string]*device.Unit),
		location: make(map[string]string, len(cfg.Users)),
	}

	id := 0
	nextID := func() int { id++; return id }

	for _, rc := range cfg.Rooms {
		rm := &room{cfg: rc, temperature: rc.Temperature, humidity: rc.Humidity, dark: rc.Dark}
		rm.thermometer = device.NewThermometer(nextID(), rc.Name, rc.Temperature)
		rm.hygrometer = device.NewHygrometer(nextID(), rc.Name, rc.Humidity)
		rm.lightSensor = device.NewLightSensor(nextID(), rc.Name, rc.Dark)
		for _, u := range []*device.Unit{rm.thermometer, rm.hygrometer, rm.lightSensor} {
			if err := u.Publish(host); err != nil {
				_ = host.Close()
				return nil, err
			}
		}
		h.rooms[rc.Name] = rm
	}

	for _, ac := range cfg.Appliances {
		unit, err := buildAppliance(ac, nextID())
		if err != nil {
			_ = host.Close()
			return nil, err
		}
		if err := unit.Publish(host); err != nil {
			_ = host.Close()
			return nil, err
		}
		h.units[ac.Room+"/"+unit.Dev.FriendlyName] = unit
		if ac.Kind == KindAirConditioner {
			if rm, ok := h.rooms[ac.Room]; ok {
				rm.aircon = unit
			}
		}
	}

	h.presence = device.NewPresenceSensor(nextID(), cfg.Users)
	if err := h.presence.Publish(host); err != nil {
		_ = host.Close()
		return nil, err
	}
	h.epg = device.NewEPGTuner(nextID())
	if err := h.epg.Publish(host); err != nil {
		_ = host.Close()
		return nil, err
	}
	h.publishEPG()
	return h, nil
}

func buildAppliance(ac ApplianceConfig, id int) (*device.Unit, error) {
	switch ac.Kind {
	case KindTV:
		return device.NewTV(id, ac.Room), nil
	case KindStereo:
		return device.NewStereo(id, ac.Room), nil
	case KindVideoRecorder:
		return device.NewVideoRecorder(id, ac.Room), nil
	case KindAirConditioner:
		return device.NewAirConditioner(id, ac.Room), nil
	case KindLight:
		name := ac.Name
		if name == "" {
			name = "light"
		}
		return device.NewLight(name, id, ac.Room), nil
	case KindAlarm:
		return device.NewAlarm(id, ac.Room), nil
	case KindDoorLock:
		name := ac.Name
		if name == "" {
			name = "door"
		}
		return device.NewDoorLock(name, id, ac.Room), nil
	default:
		return nil, fmt.Errorf("home: unknown appliance kind %q", ac.Kind)
	}
}

// Close shuts the home's device host down.
func (h *Home) Close() error { return h.host.Close() }

// Host exposes the underlying device host (for tests and the server's local
// mode).
func (h *Home) Host() *upnp.DeviceHost { return h.host }

// Appliance returns an appliance unit by room and friendly name.
func (h *Home) Appliance(room, name string) (*device.Unit, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	u, ok := h.units[room+"/"+name]
	return u, ok
}

// Users returns the configured users.
func (h *Home) Users() []string {
	return append([]string(nil), h.cfg.Users...)
}

// MoveUser places a user in a room ("" = away) without an arrival event.
func (h *Home) MoveUser(user, roomName string) error {
	if roomName != "" {
		if _, ok := h.rooms[roomName]; !ok {
			return fmt.Errorf("home: unknown room %q", roomName)
		}
	}
	h.mu.Lock()
	h.location[user] = roomName
	h.mu.Unlock()
	return h.presence.SetUserLocation(user, roomName)
}

// Arrive moves a user into a room and fires an arrival event
// ("home-from-work", "return-home", ...).
func (h *Home) Arrive(user, roomName, event string) error {
	if err := h.MoveUser(user, roomName); err != nil {
		return err
	}
	return h.presence.FireArrival(user, event)
}

// Leave marks the user away from home.
func (h *Home) Leave(user string) error { return h.MoveUser(user, "") }

// UserLocation returns the room a user is in.
func (h *Home) UserLocation(user string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.location[user]
}

// SetClimate overrides a room's climate directly (for tests and scripted
// scenarios).
func (h *Home) SetClimate(roomName string, temperature, humidity float64) error {
	h.mu.Lock()
	rm, ok := h.rooms[roomName]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("home: unknown room %q", roomName)
	}
	rm.temperature = temperature
	rm.humidity = humidity
	h.mu.Unlock()
	if err := rm.thermometer.SetTemperature(temperature); err != nil {
		return err
	}
	return rm.hygrometer.SetHumidity(humidity)
}

// SetDark overrides a room's darkness flag.
func (h *Home) SetDark(roomName string, dark bool) error {
	h.mu.Lock()
	rm, ok := h.rooms[roomName]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("home: unknown room %q", roomName)
	}
	rm.dark = dark
	h.mu.Unlock()
	return rm.lightSensor.SetDark(dark)
}

// Climate reports a room's current simulated climate.
func (h *Home) Climate(roomName string) (temperature, humidity float64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rm, ok := h.rooms[roomName]
	if !ok {
		return 0, 0, fmt.Errorf("home: unknown room %q", roomName)
	}
	return rm.temperature, rm.humidity, nil
}

// Step advances the simulation by d: the clock moves, room climates drift
// (toward outdoors, or toward a powered air conditioner's targets), and the
// EPG line-up follows the broadcast schedule.
func (h *Home) Step(d time.Duration) error {
	h.Clock.Advance(d)
	hours := d.Hours()

	type reading struct {
		unit  *device.Unit
		set   func(*device.Unit, float64) error
		value float64
	}
	var updates []reading

	h.mu.Lock()
	names := make([]string, 0, len(h.rooms))
	for name := range h.rooms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rm := h.rooms[name]
		targetT, targetH := h.cfg.OutdoorTemperature, h.cfg.OutdoorHumidity
		rate := 0.35 // passive drift fraction per hour
		if rm.aircon != nil {
			if power, err := rm.aircon.Get(device.SvcSwitchPower, "power"); err == nil && power == "1" {
				if v, err := rm.aircon.Get(device.SvcThermostat, "target-temperature"); err == nil {
					targetT = parseNumber(v, targetT)
				}
				if v, err := rm.aircon.Get(device.SvcThermostat, "target-humidity"); err == nil {
					targetH = parseNumber(v, targetH)
				}
				rate = 1.5 // active conditioning is much faster
			}
		}
		rm.temperature += (targetT - rm.temperature) * clamp01(rate*hours)
		rm.humidity += (targetH - rm.humidity) * clamp01(rate*hours)
		updates = append(updates,
			reading{rm.thermometer, (*device.Unit).SetTemperature, rm.temperature},
			reading{rm.hygrometer, (*device.Unit).SetHumidity, rm.humidity},
		)
	}
	h.mu.Unlock()

	for _, u := range updates {
		if err := u.set(u.unit, round1(u.value)); err != nil {
			return err
		}
	}
	return h.publishEPG()
}

// publishEPG recomputes the programmes on air at the current clock time.
func (h *Home) publishEPG() error {
	minute := h.Clock.Now().Hour()*60 + h.Clock.Now().Minute()
	var current []core.Program
	for _, b := range h.cfg.Schedule {
		if minute >= b.StartMin && minute < b.EndMin {
			current = append(current, b.Program)
		}
	}
	encoded := device.EncodePrograms(current)
	h.mu.Lock()
	changed := encoded != h.airing
	h.airing = encoded
	h.mu.Unlock()
	if !changed {
		return nil
	}
	return h.epg.SetPrograms(encoded)
}

// OnAir reports the programmes currently broadcast.
func (h *Home) OnAir() []core.Program {
	h.mu.Lock()
	defer h.mu.Unlock()
	return device.DecodePrograms(h.airing)
}

func parseNumber(s string, fallback float64) float64 {
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err != nil {
		return fallback
	}
	return f
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func round1(v float64) float64 {
	return math.Round(v*10) / 10
}
