package home

import (
	"sync"
	"time"
)

// SimClock is a manually advanced simulation clock. All home physics, EPG
// scheduling and rule-engine time conditions read it, so scenarios like the
// paper's Fig. 1 evening can run in milliseconds.
type SimClock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewSimClock returns a clock frozen at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now returns the current simulated time.
func (c *SimClock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
func (c *SimClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Set jumps the clock to t.
func (c *SimClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
