package home

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/upnp"
)

func newHome(t *testing.T) *Home {
	t.Helper()
	h, err := New(upnp.NewNetwork(), DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func TestSimClock(t *testing.T) {
	start := time.Date(2005, 3, 7, 17, 0, 0, 0, time.UTC)
	c := NewSimClock(start)
	if !c.Now().Equal(start) {
		t.Error("clock not at start")
	}
	got := c.Advance(30 * time.Minute)
	if got.Hour() != 17 || got.Minute() != 30 {
		t.Errorf("advanced to %v", got)
	}
	c.Set(start.Add(2 * time.Hour))
	if c.Now().Hour() != 19 {
		t.Errorf("set to %v", c.Now())
	}
}

func TestNewPublishesEverything(t *testing.T) {
	h := newHome(t)
	devs := h.Host().Devices()
	// 3 rooms × 3 sensors + 9 appliances + presence + epg = 20
	if len(devs) != 20 {
		t.Errorf("published %d devices, want 20", len(devs))
	}
	if _, ok := h.Appliance("living room", "tv"); !ok {
		t.Error("tv missing")
	}
	if _, ok := h.Appliance("living room", "air conditioner"); !ok {
		t.Error("air conditioner missing")
	}
	if _, ok := h.Appliance("hall", "light"); !ok {
		t.Error("hall light missing")
	}
	if _, ok := h.Appliance("entrance", "entrance door"); !ok {
		t.Error("entrance door missing")
	}
	if _, ok := h.Appliance("living room", "submarine"); ok {
		t.Error("phantom appliance found")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(upnp.NewNetwork(), Config{}); err == nil {
		t.Error("config without rooms should fail")
	}
	cfg := DefaultConfig()
	cfg.Appliances = []ApplianceConfig{{Kind: "teleporter", Room: "living room"}}
	if _, err := New(upnp.NewNetwork(), cfg); err == nil {
		t.Error("unknown appliance kind should fail")
	}
}

func TestMoveAndArrive(t *testing.T) {
	h := newHome(t)
	if err := h.MoveUser("tom", "living room"); err != nil {
		t.Fatal(err)
	}
	if h.UserLocation("tom") != "living room" {
		t.Error("tom not in living room")
	}
	if err := h.MoveUser("tom", "atlantis"); err == nil {
		t.Error("unknown room should fail")
	}
	if err := h.Arrive("alan", "living room", "home-from-work"); err != nil {
		t.Fatal(err)
	}
	if h.UserLocation("alan") != "living room" {
		t.Error("alan not in living room")
	}
	if err := h.Leave("tom"); err != nil {
		t.Fatal(err)
	}
	if h.UserLocation("tom") != "" {
		t.Error("tom should be away")
	}
}

func TestClimateOverridesAndDrift(t *testing.T) {
	h := newHome(t)
	if err := h.SetClimate("living room", 20, 40); err != nil {
		t.Fatal(err)
	}
	temp, humid, err := h.Climate("living room")
	if err != nil || temp != 20 || humid != 40 {
		t.Fatalf("climate = %v/%v err=%v", temp, humid, err)
	}
	// Unconditioned room drifts toward outdoors (29C / 70%).
	if err := h.Step(time.Hour); err != nil {
		t.Fatal(err)
	}
	temp, humid, _ = h.Climate("living room")
	if temp <= 20 || temp >= 29 {
		t.Errorf("temperature %v should drift toward 29", temp)
	}
	if humid <= 40 || humid >= 70 {
		t.Errorf("humidity %v should drift toward 70", humid)
	}
	if _, _, err := h.Climate("atlantis"); err == nil {
		t.Error("unknown room should fail")
	}
}

func TestAirConditionerPullsClimate(t *testing.T) {
	h := newHome(t)
	if err := h.SetClimate("living room", 30, 75); err != nil {
		t.Fatal(err)
	}
	ac, _ := h.Appliance("living room", "air conditioner")
	if err := ac.Set(device.SvcSwitchPower, "power", "1"); err != nil {
		t.Fatal(err)
	}
	if err := ac.Set(device.SvcThermostat, "target-temperature", "25"); err != nil {
		t.Fatal(err)
	}
	if err := ac.Set(device.SvcThermostat, "target-humidity", "60"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := h.Step(30 * time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	temp, humid, _ := h.Climate("living room")
	if temp > 26 {
		t.Errorf("conditioned temperature = %v, want near 25", temp)
	}
	if humid > 63 {
		t.Errorf("conditioned humidity = %v, want near 60", humid)
	}
}

func TestStepPublishesSensorReadings(t *testing.T) {
	h := newHome(t)
	var last string
	cancel, err := h.Host().SubscribeLocal(
		device.UDN("thermometer", 1), device.SvcTempSensor,
		func(vars map[string]string) {
			if v, ok := vars["temperature"]; ok {
				last = v
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := h.SetClimate("living room", 30, 75); err != nil {
		t.Fatal(err)
	}
	if last != "30" {
		t.Errorf("thermometer event = %q, want 30", last)
	}
}

func TestEPGSchedule(t *testing.T) {
	h := newHome(t) // starts at 17:00
	if programs := h.OnAir(); len(programs) != 1 || programs[0].Category != "news" {
		t.Errorf("17:00 programs = %v, want only news", programs)
	}
	// 18:00: baseball game starts.
	if err := h.Step(time.Hour); err != nil {
		t.Fatal(err)
	}
	foundBaseball := false
	for _, p := range h.OnAir() {
		if p.Category == "baseball game" {
			foundBaseball = true
		}
	}
	if !foundBaseball {
		t.Errorf("18:00 programs = %v, want baseball game", h.OnAir())
	}
	// 19:00: the movie joins.
	if err := h.Step(time.Hour); err != nil {
		t.Fatal(err)
	}
	if len(h.OnAir()) != 3 {
		t.Errorf("19:00 programs = %v, want 3", h.OnAir())
	}
	// 21:30: game and movie are over.
	if err := h.Step(150 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if programs := h.OnAir(); len(programs) != 1 {
		t.Errorf("21:30 programs = %v, want only news", programs)
	}
}

func TestEPGEventsOnChange(t *testing.T) {
	h := newHome(t)
	count := 0
	cancel, err := h.Host().SubscribeLocal(h.epg.Dev.UDN, device.SvcEPG, func(map[string]string) {
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if count != 1 {
		t.Fatalf("initial events = %d", count)
	}
	// Stepping within the same line-up publishes nothing.
	if err := h.Step(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("unchanged line-up should not event (count=%d)", count)
	}
	// Crossing 18:00 publishes the new line-up.
	if err := h.Step(60 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("line-up change should event exactly once (count=%d)", count)
	}
}

func TestUsersCopy(t *testing.T) {
	h := newHome(t)
	users := h.Users()
	if len(users) != 3 {
		t.Fatalf("users = %v", users)
	}
	users[0] = "mallory"
	if h.Users()[0] == "mallory" {
		t.Error("Users exposed internal slice")
	}
}
