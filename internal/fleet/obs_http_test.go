package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/ingest"
)

// TestMetricsEndpoint: the Prometheus exposition carries the engine and
// ingest counters of real traffic, the transport-side gauges, and the
// admission shed counters.
func TestMetricsEndpoint(t *testing.T) {
	hub := newTestHub(t, WithShards(2))
	ts := httptest.NewServer(NewHTTPHandler(hub,
		WithEventSink(NewEventSink(hub, ingest.Limits{}))))
	defer ts.Close()

	seedHome(t, hub, "h1")
	seedHome(t, hub, "h2")
	for i := 0; i < 4; i++ {
		resp := postBody(t, ts.URL+"/fleet/homes/h1/events",
			[]byte(`{"deviceType":"`+device.TypeThermometer+
				`","name":"thermometer","location":"living room","vars":{"temperature":"31"},"sync":true}`))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post %d: %d", i, resp.StatusCode)
		}
	}
	// One malformed body: must count as a decode error, not a decoded event.
	if resp := postBody(t, ts.URL+"/fleet/homes/h1/events",
		[]byte(`{"deviceType":`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed post: %d", resp.StatusCode)
	}

	resp, body := doJSON(t, ts, "GET", "/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"cadel_homes 2",
		"cadel_ingest_events_decoded_total 4",
		"cadel_ingest_decode_errors_total 1",
		"cadel_events_posted_total 4",
		`cadel_ingest_shed_total{cause="rate"} 0`,
		`cadel_ingest_shed_total{cause="backlog"} 0`,
		`cadel_shard_queue_depth{shard="0"}`,
		`cadel_shard_queue_depth{shard="1"}`,
		"cadel_ingest_decode_duration_ns_count 4",
		"# TYPE cadel_engine_passes_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The sync posts evaluated before answering and the scrape runs a flush
	// barrier, so the pass/fire counters are deterministic: one pass and one
	// firing per posted event (h1's first event fires, later ones keep state).
	var passes, fired uint64
	for _, line := range strings.Split(out, "\n") {
		if n, err := fmt.Sscanf(line, "cadel_engine_passes_total %d", &passes); n == 1 && err == nil {
			continue
		}
		_, _ = fmt.Sscanf(line, "cadel_engine_rules_fired_total %d", &fired)
	}
	// Submit/SetUsers also tick, so passes exceed the event count; the exact
	// floor is the 4 evaluated events.
	if passes < 4 {
		t.Errorf("passes = %d, want >= 4", passes)
	}
	if fired != 1 {
		t.Errorf("rules fired = %d, want exactly 1 (repeat events keep state)", fired)
	}

	// /fleet/stats carries the same totals plus admission stats.
	resp, body = doJSON(t, ts, "GET", "/fleet/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet/stats: %d", resp.StatusCode)
	}
	var st statsBody
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Totals.EventsDecoded != 4 || st.Totals.DecodeErrors != 1 {
		t.Errorf("stats totals = %+v", st.Totals)
	}
	if st.Admission == nil {
		t.Error("stats missing admission block")
	}
	if st.Passes != st.Totals.Passes {
		t.Errorf("Stats.Passes = %d, Totals.Passes = %d — plumbing diverged", st.Passes, st.Totals.Passes)
	}
}

// TestTraceEndpointHandoffExplain is the acceptance scenario: the trace
// endpoint, filtered to one device, reproduces the paper's Fig. 1 hand-off —
// which rule won the device, which lost, and the arbitration reason.
func TestTraceEndpointHandoffExplain(t *testing.T) {
	hub := newTestHub(t, WithShards(1))
	ts := httptest.NewServer(NewHTTPHandler(hub))
	defer ts.Close()

	home := "h1"
	for _, u := range []string{"alan", "emily"} {
		if err := hub.RegisterUser(home, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hub.Submit(home, "If alan is in the living room, turn on the stereo.", "alan"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Submit(home, "If emily is in the living room, turn on the stereo.", "emily"); err != nil {
		t.Fatal(err)
	}
	// Contextual priority: while emily is in the living room, she outranks
	// alan on the stereo.
	if err := hub.SetPriority(home, core.DeviceRef{Name: "stereo"}, []string{"emily", "alan"},
		"emily is in the living room"); err != nil {
		t.Fatal(err)
	}

	// Alan alone: his rule takes the stereo. Then emily walks in: contextual
	// order applies and the stereo hands off to her rule.
	for _, vars := range []map[string]string{
		{"presence-alan": "living room"},
		{"presence-emily": "living room"},
	} {
		if err := hub.PostEventSync(home, device.TypePresenceSensor, "presence sensor", "home", vars); err != nil {
			t.Fatal(err)
		}
	}

	resp, body := doJSON(t, ts, "GET", "/fleet/homes/"+home+"/trace?device=stereo", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %d %s", resp.StatusCode, body)
	}
	var traces []engine.PassTrace
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatalf("no stereo traces: %s", body)
	}
	var handoff *engine.TraceDecision
	for i := range traces {
		for j := range traces[i].Decisions {
			d := &traces[i].Decisions[j]
			if d.Winner == "emily-2" && len(d.Losers) > 0 {
				handoff = d
			}
		}
	}
	if handoff == nil {
		t.Fatalf("no hand-off decision: %s", body)
	}
	if handoff.Device != "stereo" || !handoff.Fired || handoff.Owner != "emily" {
		t.Errorf("hand-off = %+v", handoff)
	}
	if handoff.Losers[0].Rule != "alan-1" || handoff.Losers[0].Owner != "alan" {
		t.Errorf("losers = %+v, want alan-1", handoff.Losers)
	}
	if !strings.Contains(handoff.Reason, `"emily"`) ||
		!strings.Contains(handoff.Reason, "#1") ||
		!strings.Contains(handoff.Reason, "emily is in the living room") {
		t.Errorf("reason = %q, want emily ranked #1 under the contextual order", handoff.Reason)
	}

	// The rule filter keeps only decisions mentioning the losing rule.
	resp, body = doJSON(t, ts, "GET", "/fleet/homes/"+home+"/trace?rule=alan-1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace?rule: %d", resp.StatusCode)
	}
	var byRule []engine.PassTrace
	if err := json.Unmarshal(body, &byRule); err != nil {
		t.Fatal(err)
	}
	if len(byRule) == 0 {
		t.Fatalf("rule filter dropped everything: %s", body)
	}
	for _, p := range byRule {
		for _, d := range p.Decisions {
			if d.Winner != "alan-1" && !mentionsLoser(d, "alan-1") {
				t.Errorf("rule filter leaked decision %+v", d)
			}
		}
	}

	// A device nobody owns filters to an empty (non-null) array.
	resp, body = doJSON(t, ts, "GET", "/fleet/homes/"+home+"/trace?device=toaster", nil)
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("empty filter: %d %q", resp.StatusCode, body)
	}

	// n caps the newest passes.
	resp, body = doJSON(t, ts, "GET", "/fleet/homes/"+home+"/trace?n=1", nil)
	var capped []engine.PassTrace
	if err := json.Unmarshal(body, &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped) != 1 {
		t.Errorf("n=1 returned %d passes", len(capped))
	}

	// Unknown home: 404, not a materialized home.
	if resp, _ := doJSON(t, ts, "GET", "/fleet/homes/ghost/trace", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost home trace: %d, want 404", resp.StatusCode)
	}
}

func mentionsLoser(d engine.TraceDecision, rule string) bool {
	for _, l := range d.Losers {
		if l.Rule == rule {
			return true
		}
	}
	return false
}

// TestMetricsTraceUnderSaturation hammers the observability endpoints while
// PostEventFast traffic saturates the shards — run under -race, this is the
// data-race gate for the whole scrape/trace path.
func TestMetricsTraceUnderSaturation(t *testing.T) {
	hub := newTestHub(t, WithShards(2), WithTraceLimit(8))
	ts := httptest.NewServer(NewHTTPHandler(hub,
		WithEventSink(NewEventSink(hub, ingest.Limits{}))))
	defer ts.Close()

	homes := []string{"h1", "h2", "h3"}
	for _, home := range homes {
		seedHome(t, hub, home)
	}

	const posters, readers, iters = 4, 3, 150
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				home := homes[(p+i)%len(homes)]
				temp := fmt.Sprintf("%d", 25+(i%10))
				resp := postBody(t, ts.URL+"/fleet/homes/"+home+"/events",
					[]byte(`{"deviceType":"`+device.TypeThermometer+
						`","name":"thermometer","location":"living room","vars":{"temperature":"`+temp+`"}}`))
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("post: %d", resp.StatusCode)
					return
				}
			}
		}(p)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters/3; i++ {
				switch i % 3 {
				case 0:
					if resp, _ := doJSON(t, ts, "GET", "/metrics", nil); resp.StatusCode != http.StatusOK {
						t.Errorf("metrics: %d", resp.StatusCode)
					}
				case 1:
					if resp, _ := doJSON(t, ts, "GET", "/fleet/homes/"+homes[r%len(homes)]+"/trace", nil); resp.StatusCode != http.StatusOK {
						t.Errorf("trace: %d", resp.StatusCode)
					}
				default:
					if resp, _ := doJSON(t, ts, "GET", "/fleet/stats", nil); resp.StatusCode != http.StatusOK {
						t.Errorf("stats: %d", resp.StatusCode)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if err := hub.Quiesce(); err != nil {
		t.Fatal(err)
	}

	// Settled counts: every post decoded and evaluated, nothing lost.
	m := hub.Metrics()
	tot := m.Totals()
	if tot.EventsDecoded != posters*iters {
		t.Errorf("events decoded = %d, want %d", tot.EventsDecoded, posters*iters)
	}
	if tot.Passes == 0 || tot.RulesChecked == 0 {
		t.Errorf("totals not populated: %+v", tot)
	}
}
