package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/device"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestFleetHTTPEndToEnd(t *testing.T) {
	hub := newTestHub(t, WithShards(2))
	ts := httptest.NewServer(NewHTTPHandler(hub))
	defer ts.Close()

	// Register users and submit rules into two homes.
	for _, home := range []string{"h1", "h2"} {
		resp, body := doJSON(t, ts, "POST", "/fleet/homes/"+home+"/users",
			map[string]any{"name": "tom"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("%s: create user: %d %s", home, resp.StatusCode, body)
		}
		resp, body = doJSON(t, ts, "POST", "/fleet/homes/"+home+"/rules",
			map[string]any{"source": hotRule, "owner": "tom"})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("%s: submit: %d %s", home, resp.StatusCode, body)
		}
		var sub submitBody
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatal(err)
		}
		if sub.Rule == nil || sub.Rule.ID != "tom-1" {
			t.Fatalf("%s: submit body = %s", home, body)
		}
	}

	// Bad submissions map to client errors.
	if resp, _ := doJSON(t, ts, "POST", "/fleet/homes/h1/rules",
		map[string]any{"source": hotRule, "owner": "ghost"}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user: status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, ts, "POST", "/fleet/homes/h1/rules",
		map[string]any{"source": "utter gibberish blargh.", "owner": "tom"}); resp.StatusCode >= 500 {
		t.Fatalf("parse failure returned a server error: %d", resp.StatusCode)
	}

	// Post a sensor event into h1 only (sync, so the log is ready to read).
	resp, body := doJSON(t, ts, "POST", "/fleet/homes/h1/events", map[string]any{
		"deviceType": device.TypeThermometer,
		"name":       "thermometer",
		"location":   "living room",
		"vars":       map[string]string{"temperature": "31"},
		"sync":       true,
	})
	if resp.StatusCode != http.StatusOK { // sync post: evaluation already done
		t.Fatalf("post event: %d %s", resp.StatusCode, body)
	}

	var log []firedBody
	resp, body = doJSON(t, ts, "GET", "/fleet/homes/h1/log", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get log: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &log); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].Device != "air conditioner" {
		t.Fatalf("h1 log = %s", body)
	}
	resp, body = doJSON(t, ts, "GET", "/fleet/homes/h2/log", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("get h2 log failed")
	}
	var log2 []firedBody
	if err := json.Unmarshal(body, &log2); err != nil {
		t.Fatal(err)
	}
	if len(log2) != 0 {
		t.Fatalf("h2 log = %s, want empty (homes are isolated)", body)
	}

	// Priority + rules listing + delete.
	if resp, body := doJSON(t, ts, "POST", "/fleet/homes/h1/priority", map[string]any{
		"device": map[string]string{"name": "air conditioner"},
		"users":  []string{"tom"},
	}); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("set priority: %d %s", resp.StatusCode, body)
	}
	if resp, _ := doJSON(t, ts, "DELETE", "/fleet/homes/h2/rules/tom-1", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete rule: %d", resp.StatusCode)
	}
	var rules []ruleBody
	_, body = doJSON(t, ts, "GET", "/fleet/homes/h2/rules", nil)
	if err := json.Unmarshal(body, &rules); err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("h2 rules after delete = %s", body)
	}

	// Homes + stats.
	var homes []string
	_, body = doJSON(t, ts, "GET", "/fleet/homes", nil)
	if err := json.Unmarshal(body, &homes); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(homes) != "[h1 h2]" {
		t.Fatalf("homes = %v", homes)
	}
	var st Stats
	_, body = doJSON(t, ts, "GET", "/fleet/stats", nil)
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Homes != 2 || st.Events != 1 || st.Shards != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// Compact without a store is a no-op, not an error.
	if resp, _ := doJSON(t, ts, "POST", "/fleet/compact", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("compact: %d", resp.StatusCode)
	}
}
