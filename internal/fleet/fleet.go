// Package fleet scales the CADEL home server from the paper's single home
// (Fig. 3, Nishigaki et al., ICDCS 2005) to a multi-home service. A Hub owns
// N shards; every home maps to one shard by hash, and each shard runs the
// homes it owns — their lexicon, rule database, priority table and execution
// engine — behind a single mailbox goroutine, so homes evaluate independently
// and shards evaluate in parallel.
//
// The pipeline, stage by stage (see README.md for the sketch):
//
//	ingestion → shard mailbox → coalesce → engine pass → dispatch pool → store
//
// Ingestion is asynchronous and coalesced: PostEvent enqueues onto the
// home's shard mailbox, and the shard drains its whole backlog at once —
// a burst of UPnP property-change events for one home collapses into one
// accumulated dirty-key set and a single evaluation pass instead of a pass
// per NOTIFY. Actions fired by a pass are handed to the dispatch worker pool
// as one batch (engine.WithBatchDispatcher), so slow appliance round-trips
// overlap instead of serializing under the engine lock. Rule and priority
// mutations persist through a pluggable Store; a hub restarted over the same
// store rehydrates every home's users, words, rules and priorities.
package fleet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/vocab"
)

// Errors reported by the fleet.
var (
	// ErrClosed marks operations on a hub after Close.
	ErrClosed = errors.New("fleet: hub closed")
	// ErrInconsistent marks a rule whose condition can never hold; the hub
	// refuses it so the user can fix the condition (Sect. 4.4).
	ErrInconsistent = errors.New("fleet: rule condition can never hold")
	// ErrUnknownUser marks a submission by a user the home has not registered.
	ErrUnknownUser = errors.New("fleet: unknown user")
	// ErrForbidden marks a rule whose owner lacks the privilege for the
	// target device and action.
	ErrForbidden = errors.New("fleet: user may not perform this action on this device")
	// ErrNoHome marks a per-home read (stats, compaction) on a home that was
	// never written; reads must not materialize homes.
	ErrNoHome = errors.New("fleet: home does not exist")
	// ErrStoreDegraded marks a write refused (or abandoned) because the
	// durable store backend is unreachable: the hub fails the write closed —
	// in-memory state rolls back and the HTTP layer answers 503 with a
	// Retry-After — while reads keep serving from memory. Wrap it in a
	// DegradedError to carry the retry hint.
	ErrStoreDegraded = errors.New("fleet: store degraded")
	// ErrHomeSealed marks a mutation or event on a home sealed for live
	// migration (Hub.SealHome): the home is mid-move and accepts no new
	// writes until the target takes over. The HTTP layer answers 503 with a
	// Retry-After; by the time the client retries, the ring answers with a
	// 307 to the new owner. Wrap it in a SealedError to carry the hint.
	ErrHomeSealed = errors.New("fleet: home sealed for migration")
)

// DegradedError is a store-degraded failure with a retry hint. It unwraps to
// ErrStoreDegraded; the HTTP layer turns RetryAfter into a Retry-After
// header on the 503.
type DegradedError struct {
	// RetryAfter is how long the caller should wait before retrying the
	// write — the breaker's remaining cool-down, or one backoff step when the
	// failure exhausted its retries without tripping the breaker.
	RetryAfter time.Duration
	// Err is the underlying transport failure; nil when the breaker refused
	// the write without attempting it.
	Err error
}

// Error implements error.
func (e *DegradedError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%v: %v", ErrStoreDegraded, e.Err)
	}
	return ErrStoreDegraded.Error()
}

// Unwrap makes errors.Is(err, ErrStoreDegraded) hold.
func (e *DegradedError) Unwrap() error { return ErrStoreDegraded }

// DefaultSealRetryAfter is the Retry-After hint handed to clients that hit a
// sealed home. Migrations are sub-second in practice; one second keeps dumb
// retry loops from hammering the source while it snapshots.
const DefaultSealRetryAfter = time.Second

// SealedError is a write refused because the home is sealed for migration.
// It unwraps to ErrHomeSealed; the HTTP layer turns RetryAfter into a
// Retry-After header on the 503.
type SealedError struct {
	Home       string
	RetryAfter time.Duration
}

// Error implements error.
func (e *SealedError) Error() string {
	return fmt.Sprintf("%v: %q", ErrHomeSealed, e.Home)
}

// Unwrap makes errors.Is(err, ErrHomeSealed) hold.
func (e *SealedError) Unwrap() error { return ErrHomeSealed }

// DefaultLogLimit is the per-home fired-action log cap applied unless
// WithLogLimit overrides it. Long-running homes fire indefinitely, so an
// unbounded log is a slow leak at fleet scale; pass WithLogLimit(0) to keep
// everything (single-home debugging, short-lived tests).
const DefaultLogLimit = 1024

// DefaultTraceLimit is the per-home firing-trace ring capacity (pass records
// kept for GET /fleet/homes/{home}/trace) unless WithTraceLimit overrides
// it. The ring reuses its slots in place, so the cap bounds idle memory, not
// allocation rate.
const DefaultTraceLimit = 64

// Dispatcher applies one fired action of one home to the real (or simulated)
// appliance. The single-home server wires this to UPnP control.
type Dispatcher func(home string, ref core.DeviceRef, action core.Action) error

// OnFire observes every dispatched action. It runs on the home's shard
// goroutine; it must not call back into the hub for the same shard.
type OnFire func(home string, f engine.Fired)

// Authorizer gates rule submission: it reports whether owner may register a
// rule performing verb on the device. nil allows everything.
type Authorizer func(home, owner string, device core.DeviceRef, verb string) bool

// LexiconFactory builds the lexicon for a new home. The default gives every
// home its own vocab.Default(); a benchmark over many word-less homes can
// share one lexicon across all of them instead.
type LexiconFactory func(home string) *vocab.Lexicon

type config struct {
	shards          int
	dispatchWorkers int
	now             func() time.Time
	eventTTL        time.Duration
	logLimit        int
	traceCap        int
	fullScan        bool
	stringKeys      bool
	intervalFeas    bool
	dispatch        Dispatcher
	onFire          OnFire
	authorize       Authorizer
	lexicon         LexiconFactory
	store           Store
}

// HubOption configures a Hub.
type HubOption interface{ apply(*config) }

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithShards sets the number of shards (mailbox goroutines). Homes map to
// shards by hash; more shards mean more evaluation parallelism. Defaults to
// the number of CPUs.
func WithShards(n int) HubOption {
	return optionFunc(func(c *config) { c.shards = n })
}

// WithDispatchWorkers sets the size of the dispatch worker pool shared by all
// shards. 0 (the default) dispatches inline on the shard goroutine; with
// workers, a pass's fired batch goes out in parallel.
func WithDispatchWorkers(n int) HubOption {
	return optionFunc(func(c *config) { c.dispatchWorkers = n })
}

// WithClock supplies the time source shared by every home's engine.
func WithClock(now func() time.Time) HubOption {
	return optionFunc(func(c *config) { c.now = now })
}

// WithEventTTL sets how long arrival events stay part of a home's context.
func WithEventTTL(ttl time.Duration) HubOption {
	return optionFunc(func(c *config) { c.eventTTL = ttl })
}

// WithLogLimit caps each home's fired-action log (engine.WithLogLimit).
// The default is DefaultLogLimit; n <= 0 removes the cap and keeps
// everything.
func WithLogLimit(n int) HubOption {
	return optionFunc(func(c *config) { c.logLimit = n })
}

// WithTraceLimit sets each home's firing-trace ring capacity
// (engine.WithTrace). The default is DefaultTraceLimit; n <= 0 disables
// tracing entirely.
func WithTraceLimit(n int) HubOption {
	return optionFunc(func(c *config) { c.traceCap = n })
}

// WithFullScan puts every home's engine in full-scan (oracle) mode.
func WithFullScan() HubOption {
	return optionFunc(func(c *config) { c.fullScan = true })
}

// WithStringKeys puts every home's engine on the retained string-keyed
// evaluation path (engine.WithStringKeys) instead of the symbol-interned hot
// path. Equivalence tests and benchmarks use it as the oracle/baseline.
func WithStringKeys() HubOption {
	return optionFunc(func(c *config) { c.stringKeys = true })
}

// WithIntervalFeasibility switches the consistency/conflict checker to
// interval propagation instead of the simplex method.
func WithIntervalFeasibility() HubOption {
	return optionFunc(func(c *config) { c.intervalFeas = true })
}

// WithDispatcher installs the action dispatcher.
func WithDispatcher(d Dispatcher) HubOption {
	return optionFunc(func(c *config) { c.dispatch = d })
}

// WithOnFire installs a fired-action observer.
func WithOnFire(fn OnFire) HubOption {
	return optionFunc(func(c *config) { c.onFire = fn })
}

// WithAuthorizer installs the rule-submission privilege check.
func WithAuthorizer(a Authorizer) HubOption {
	return optionFunc(func(c *config) { c.authorize = a })
}

// WithLexiconFactory overrides how a new home's lexicon is built.
func WithLexiconFactory(f LexiconFactory) HubOption {
	return optionFunc(func(c *config) { c.lexicon = f })
}

// WithStore attaches a persistence store. NewHub replays it to rehydrate
// every home, then appends every later mutation. The hub takes ownership and
// closes the store on Close.
func WithStore(s Store) HubOption {
	return optionFunc(func(c *config) { c.store = s })
}

// Result reports the outcome of submitting one CADEL command to a home.
type Result struct {
	// Rule is the registered rule object; nil for word definitions.
	Rule *core.Rule
	// DefinedWord is the new word for CondDef/ConfDef commands; WordKind
	// and WordSource carry what the word stands for (used by persistence).
	DefinedWord string
	WordKind    vocab.Kind
	WordSource  string
	// Conflicts lists existing rules the new rule can conflict with. The rule
	// is registered regardless; the caller should present the list and record
	// a priority order (Fig. 7).
	Conflicts []Conflict
}
