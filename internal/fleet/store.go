package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// RecordKind tags one persisted mutation.
type RecordKind string

// Record kinds. Replay order within a home follows append order; snapshots
// emit users, then words, then rules, then priorities, so every record's
// dependencies precede it.
const (
	RecordUser      RecordKind = "user"
	RecordFavorites RecordKind = "favorites"
	RecordCondWord  RecordKind = "cond-word"
	RecordConfWord  RecordKind = "conf-word"
	RecordRule      RecordKind = "rule"
	RecordRemove    RecordKind = "rule-remove"
	RecordPriority  RecordKind = "priority"
	// recordMeta is FileStore-internal: the snapshot's first line, carrying
	// the WAL epoch the snapshot supersedes. Never surfaced through Replay.
	recordMeta RecordKind = "meta"
)

// Record is one persisted mutation of one home's durable state. Rules and
// words serialize as their CADEL source and are recompiled on replay, so a
// store file is human-readable CADEL wrapped in JSON lines — the fleet-scale
// descendant of the paper's "CADEL DB" file.
type Record struct {
	Home string     `json:"home"`
	Kind RecordKind `json:"kind"`

	User      string   `json:"user,omitempty"`      // user, favorites
	Favorites []string `json:"favorites,omitempty"` // user, favorites

	Word   string `json:"word,omitempty"`   // cond-word, conf-word
	Owner  string `json:"owner,omitempty"`  // cond-word, conf-word, rule
	Source string `json:"source,omitempty"` // cond-word, conf-word, rule

	ID string `json:"id,omitempty"` // rule, rule-remove

	Device  *core.DeviceRef `json:"device,omitempty"`  // priority
	Users   []string        `json:"users,omitempty"`   // priority
	Context string          `json:"context,omitempty"` // priority

	Epoch uint64 `json:"epoch,omitempty"` // meta (FileStore-internal)
}

// Store persists the durable state of every home in a hub. Implementations
// must be safe for concurrent Append calls (shards append independently).
type Store interface {
	// Append durably adds one mutation to the log.
	Append(rec Record) error
	// Replay streams every live record — the last snapshot's records followed
	// by the log appended since — in order. It stops at the first error.
	Replay(fn func(rec Record) error) error
	// WriteSnapshot atomically replaces the snapshot with recs and truncates
	// the log: a subsequent Replay yields exactly recs.
	WriteSnapshot(recs []Record) error
	// Close releases the store's resources.
	Close() error
}

// ---- in-memory store ----

// MemStore is the in-memory Store: a mutex-guarded record slice. It backs
// tests and hubs that do not need durability.
type MemStore struct {
	mu       sync.Mutex
	snapshot []Record
	log      []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = append(m.log, rec)
	return nil
}

// Replay implements Store.
func (m *MemStore) Replay(fn func(Record) error) error {
	m.mu.Lock()
	recs := append(append([]Record(nil), m.snapshot...), m.log...)
	m.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot implements Store.
func (m *MemStore) WriteSnapshot(recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]Record(nil), recs...)
	m.log = m.log[:0]
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// ---- append-only JSON-lines file store ----

const snapshotFile = "snapshot.jsonl"

func walName(epoch uint64) string { return fmt.Sprintf("wal-%d.jsonl", epoch) }

// FileStore is the durable Store: an append-only JSON-lines write-ahead log
// plus a compacted snapshot in one directory, stdlib only. Appends go to the
// epoch's log (wal-<N>.jsonl); WriteSnapshot writes a new snapshot naming
// epoch N+1 (write-temp + fsync + rename) and switches appends to the new
// epoch's log, so replay cost stays proportional to live state, not history.
//
// Crash consistency hinges on the epoch in the snapshot's first line: replay
// reads the snapshot, then ONLY the WAL of the epoch it names. A crash
// anywhere inside WriteSnapshot leaves either the old snapshot + old WAL
// (rename never landed) or the new snapshot + the new, empty WAL — never a
// snapshot paired with a WAL whose records it already contains.
//
// Appends are buffered by the OS; the store does not fsync per record (a
// crash can cost the torn tail of the log — see Replay). A remote KV backend
// with real durability guarantees is a ROADMAP follow-up.
type FileStore struct {
	mu    sync.Mutex
	dir   string
	epoch uint64
	wal   *os.File
	enc   *json.Encoder
}

// OpenFileStore opens (creating if needed) a file store in dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	s := &FileStore{dir: dir}
	var err error
	if s.epoch, err = snapshotEpoch(filepath.Join(dir, snapshotFile)); err != nil {
		return nil, err
	}
	s.wal, err = os.OpenFile(filepath.Join(dir, walName(s.epoch)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	s.enc = json.NewEncoder(s.wal)
	s.removeStaleWALs()
	return s, nil
}

// snapshotEpoch reads the WAL epoch named by the snapshot's meta line;
// a missing snapshot means epoch 0.
func snapshotEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fleet: open store: %w", err)
	}
	defer f.Close()
	var meta Record
	if err := json.NewDecoder(bufio.NewReader(f)).Decode(&meta); err != nil {
		return 0, fmt.Errorf("fleet: open store: %s: %w", filepath.Base(path), err)
	}
	if meta.Kind != recordMeta {
		return 0, fmt.Errorf("fleet: open store: %s does not start with a meta record", filepath.Base(path))
	}
	return meta.Epoch, nil
}

// removeStaleWALs deletes WAL files from other epochs: either superseded by
// a snapshot or created by a WriteSnapshot whose rename never landed.
func (s *FileStore) removeStaleWALs() {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "wal-*.jsonl"))
	keep := walName(s.epoch)
	for _, m := range matches {
		if filepath.Base(m) != keep {
			_ = os.Remove(m)
		}
	}
}

// Append implements Store.
func (s *FileStore) Append(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return ErrClosed
	}
	return s.enc.Encode(rec)
}

// Replay implements Store. The snapshot is written atomically and must parse
// completely; the WAL may end in a torn record (the store does not fsync per
// append, so a crash can cut the final line short) — the torn tail is
// skipped, losing at most that one record, instead of bricking the restart.
func (s *FileStore) Replay(fn func(Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	skipMeta := func(rec Record) error {
		if rec.Kind == recordMeta {
			return nil
		}
		return fn(rec)
	}
	if err := replayFile(filepath.Join(s.dir, snapshotFile), skipMeta, false); err != nil {
		return err
	}
	return replayFile(filepath.Join(s.dir, walName(s.epoch)), skipMeta, true)
}

func replayFile(path string, fn func(Record) error, tolerateTornTail bool) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleet: replay: %w", err)
	}
	defer f.Close()
	// json.Encoder writes exactly one newline-terminated record per Append,
	// so the file parses line by line; only the final line can be torn.
	r := bufio.NewReader(f)
	for {
		line, readErr := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				if tolerateTornTail && readErr == io.EOF {
					return nil // torn trailing record from a crash mid-append
				}
				return fmt.Errorf("fleet: replay %s: %w", filepath.Base(path), err)
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
		if readErr == io.EOF {
			return nil
		}
		if readErr != nil {
			return fmt.Errorf("fleet: replay %s: %w", filepath.Base(path), readErr)
		}
	}
}

// WriteSnapshot implements Store. The snapshot's first line names the NEW
// (empty) WAL epoch; the rename is the commit point that atomically retires
// the old epoch's log.
func (s *FileStore) WriteSnapshot(recs []Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return ErrClosed
	}
	next := s.epoch + 1
	newWAL, err := os.OpenFile(filepath.Join(s.dir, walName(next)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := writeSnapshotFile(tmp, next, recs); err != nil {
		newWAL.Close()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		newWAL.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	// The rename (and the new WAL's directory entry) must be durable before
	// the old epoch is abandoned: otherwise a power loss could revive the old
	// snapshot, whose epoch would disown — and removeStaleWALs then delete —
	// every record appended to the new WAL since.
	if err := syncDir(s.dir); err != nil {
		newWAL.Close()
		return err
	}
	// Committed: appends now belong to the new epoch; the old log is dead.
	old, oldEpoch := s.wal, s.epoch
	s.wal, s.enc, s.epoch = newWAL, json.NewEncoder(newWAL), next
	_ = old.Close()
	_ = os.Remove(filepath.Join(s.dir, walName(oldEpoch)))
	return nil
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return nil
}

func writeSnapshotFile(path string, epoch uint64, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(Record{Kind: recordMeta, Epoch: epoch}); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("fleet: snapshot: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}
