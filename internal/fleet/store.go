package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
)

// RecordKind tags one persisted mutation.
type RecordKind string

// Record kinds. Replay order within a home follows append order; snapshots
// emit users, then words, then rules, then priorities, so every record's
// dependencies precede it.
const (
	RecordUser      RecordKind = "user"
	RecordFavorites RecordKind = "favorites"
	RecordCondWord  RecordKind = "cond-word"
	RecordConfWord  RecordKind = "conf-word"
	RecordRule      RecordKind = "rule"
	RecordRemove    RecordKind = "rule-remove"
	RecordPriority  RecordKind = "priority"
	// recordMeta is FileStore-internal: the snapshot's first line, carrying
	// the WAL epoch the snapshot supersedes. Never surfaced through Replay.
	recordMeta RecordKind = "meta"

	// RecordSeqMark and RecordReplayEnd belong to the remote record-log
	// protocol (internal/logserver + RemoteStore), never to a home's state.
	// A seq-mark persists one home's last applied idempotency sequence across
	// the server's snapshots and restarts; a replay-end record terminates the
	// replay stream so the client can tell a complete stream from one cut
	// short by a dying server. Neither ever reaches Hub replay: the server
	// keeps seq-marks out of home records, and RemoteStore consumes both
	// kinds before handing records to the hub.
	RecordSeqMark   RecordKind = "seq-mark"
	RecordReplayEnd RecordKind = "replay-end"

	// RecordHomeReset is a tombstone: on replay, every record the home
	// accumulated so far is discarded. The migration protocol appends it in
	// two places — on the source when ownership is released (so a restarted
	// source does not resurrect a home it no longer owns) and on the target
	// before importing (so a retried transfer wholesale-replaces any partial
	// state an earlier interrupted import left in the WAL).
	RecordHomeReset RecordKind = "home-reset"

	// RecordMigrationState carries a home's volatile engine state
	// (engine.StateExport as raw JSON in the State field) inside a migration
	// transfer stream. It never reaches a store: the target applies it to the
	// imported home's engine and persists only the durable records.
	RecordMigrationState RecordKind = "migration-state"
)

// Record is one persisted mutation of one home's durable state. Rules and
// words serialize as their CADEL source and are recompiled on replay, so a
// store file is human-readable CADEL wrapped in JSON lines — the fleet-scale
// descendant of the paper's "CADEL DB" file.
type Record struct {
	Home string     `json:"home"`
	Kind RecordKind `json:"kind"`

	User      string   `json:"user,omitempty"`      // user, favorites
	Favorites []string `json:"favorites,omitempty"` // user, favorites

	Word   string `json:"word,omitempty"`   // cond-word, conf-word
	Owner  string `json:"owner,omitempty"`  // cond-word, conf-word, rule
	Source string `json:"source,omitempty"` // cond-word, conf-word, rule

	ID string `json:"id,omitempty"` // rule, rule-remove

	Device  *core.DeviceRef `json:"device,omitempty"`  // priority
	Users   []string        `json:"users,omitempty"`   // priority
	Context string          `json:"context,omitempty"` // priority

	Epoch uint64 `json:"epoch,omitempty"` // meta (FileStore-internal)

	// State is the opaque engine.StateExport payload of a migration-state
	// record (raw JSON so the store layer stays decoupled from the engine).
	State json.RawMessage `json:"state,omitempty"` // migration-state

	// Seq is the remote-store idempotency key: RemoteStore numbers each
	// home's appends monotonically, and the log server applies a {home, seq}
	// pair exactly once however often the transport retries or duplicates
	// it. Zero for local stores; ignored by Hub replay.
	Seq uint64 `json:"seq,omitempty"` // append (remote protocol), seq-mark
}

// Store persists the durable state of every home in a hub. Implementations
// must be safe for concurrent Append calls (shards append independently).
type Store interface {
	// Append durably adds one mutation to the log.
	Append(rec Record) error
	// Replay streams every live record — the last snapshot's records followed
	// by the log appended since — in order. It stops at the first error.
	Replay(fn func(rec Record) error) error
	// WriteSnapshot atomically replaces the snapshot with recs and truncates
	// the log: a subsequent Replay yields exactly recs.
	WriteSnapshot(recs []Record) error
	// Close releases the store's resources.
	Close() error
}

// ---- in-memory store ----

// MemStore is the in-memory Store: a mutex-guarded record slice. It backs
// tests and hubs that do not need durability.
type MemStore struct {
	mu       sync.Mutex
	snapshot []Record
	log      []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (m *MemStore) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = append(m.log, rec)
	return nil
}

// Replay implements Store.
func (m *MemStore) Replay(fn func(Record) error) error {
	m.mu.Lock()
	recs := append(append([]Record(nil), m.snapshot...), m.log...)
	m.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot implements Store.
func (m *MemStore) WriteSnapshot(recs []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapshot = append([]Record(nil), recs...)
	m.log = m.log[:0]
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// ---- append-only JSON-lines file store ----

const snapshotFile = "snapshot.jsonl"

func walName(epoch uint64) string { return fmt.Sprintf("wal-%d.jsonl", epoch) }

// FileStore is the durable Store: an append-only JSON-lines write-ahead log
// plus a compacted snapshot in one directory, stdlib only. Appends go to the
// epoch's log (wal-<N>.jsonl); WriteSnapshot writes a new snapshot naming
// epoch N+1 (write-temp + fsync + rename) and switches appends to the new
// epoch's log, so replay cost stays proportional to live state, not history.
//
// Crash consistency hinges on the epoch in the snapshot's first line: replay
// reads the snapshot, then ONLY the WAL of the epoch it names. A crash
// anywhere inside WriteSnapshot leaves either the old snapshot + old WAL
// (rename never landed) or the new snapshot + the new, empty WAL — never a
// snapshot paired with a WAL whose records it already contains.
//
// Durability is a per-store choice. By default appends are buffered by the
// OS: a crash can cost the tail of the log (torn or unwritten final records
// — see Replay), which is the right trade for a store that only shadows an
// in-memory hub. WithSync closes that hole for stores that are themselves
// the source of truth (the remote log server): every Append returns only
// after its record is fsynced, with concurrent appends amortized into one
// group-commit fsync — the first appender through syncs the file once for
// every record written before it, and the rest return without syncing.
//
// Each record is marshalled to a buffer and written with a single write
// call; a failed or short write truncates the file back to the pre-record
// offset, so a torn line can only ever be the final one (a crash between
// write and truncate), never followed by later successful appends.
type FileStore struct {
	// Lock order: syncMu before mu, everywhere both are held. Append writes
	// under mu alone, then syncs under syncMu; WriteSnapshot and Close hold
	// syncMu across the WAL swap so a group-commit fsync never races the old
	// file's close.
	mu     sync.Mutex
	dir    string
	epoch  uint64
	wal    *os.File
	size   int64        // current WAL length: the truncate-back point
	buf    bytes.Buffer // reused per-record marshal buffer
	enc    *json.Encoder
	fsync  bool
	hooks  FaultHooks
	writes uint64 // records written to the current epoch chain (under mu)

	syncMu sync.Mutex
	synced uint64 // highest `writes` covered by a completed fsync (under syncMu)
}

// FileOption configures OpenFileStore.
type FileOption func(*FileStore)

// WithSync makes every Append durable before it returns: the record is
// fsynced to the WAL, with concurrent appends batched into one group-commit
// fsync so the sync cost amortizes across the burst. Without it appends ride
// the OS page cache and a crash can lose the log's tail.
func WithSync() FileOption {
	return func(s *FileStore) { s.fsync = true }
}

// SnapshotStep names one failure point inside WriteSnapshot, in execution
// order. FaultHooks.Snapshot is called with each before the corresponding
// action runs.
type SnapshotStep string

// WriteSnapshot's failure points.
const (
	StepWALCreate SnapshotStep = "wal-create" // create the next epoch's empty WAL
	StepTempWrite SnapshotStep = "temp-write" // write the snapshot temp file
	StepTempSync  SnapshotStep = "temp-sync"  // fsync the temp file
	StepRename    SnapshotStep = "rename"     // rename temp over the snapshot (commit point)
	StepDirSync   SnapshotStep = "dir-sync"   // fsync the directory
	StepCommit    SnapshotStep = "commit"     // committed; old WAL about to be removed
)

// FaultHooks are the fault-injection seams the crash tests and
// internal/faultinject drive. Production code never sets them.
type FaultHooks struct {
	// AppendWrite, when set, performs Append's WAL write in place of
	// w.Write(line) — it may write part of the line and fail, simulating a
	// torn write the store must roll back.
	AppendWrite func(w io.Writer, line []byte) (int, error)
	// Snapshot runs before each step of WriteSnapshot; returning an error
	// aborts the snapshot at that point (simulating a crash there), except at
	// StepCommit, where the snapshot is already committed and the error is
	// ignored. Hooks simulating a process kill call os.Exit instead of
	// returning.
	Snapshot func(step SnapshotStep) error
}

// SetFaultHooks installs fault-injection hooks. Test-only.
func (s *FileStore) SetFaultHooks(h FaultHooks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = h
}

func (s *FileStore) fault(step SnapshotStep) error {
	if s.hooks.Snapshot == nil {
		return nil
	}
	if err := s.hooks.Snapshot(step); err != nil {
		return fmt.Errorf("fleet: snapshot: injected fault at %s: %w", step, err)
	}
	return nil
}

// OpenFileStore opens (creating if needed) a file store in dir.
func OpenFileStore(dir string, opts ...FileOption) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	s := &FileStore{dir: dir}
	for _, o := range opts {
		o(s)
	}
	var err error
	if s.epoch, err = snapshotEpoch(filepath.Join(dir, snapshotFile)); err != nil {
		return nil, err
	}
	s.wal, err = os.OpenFile(filepath.Join(dir, walName(s.epoch)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	st, err := s.wal.Stat()
	if err != nil {
		_ = s.wal.Close()
		return nil, fmt.Errorf("fleet: open store: %w", err)
	}
	s.size = st.Size()
	// A crash between a partial WAL write and its truncate-back leaves a torn
	// final line. It must be cut off here, not merely tolerated at replay:
	// the handle appends at EOF, so a new record written after the torn bytes
	// would fuse with them into garbage in the MIDDLE of the log and brick
	// the next restart.
	if keep, err := completeWALPrefix(filepath.Join(dir, walName(s.epoch)), s.size); err != nil {
		_ = s.wal.Close()
		return nil, err
	} else if keep < s.size {
		if err := s.wal.Truncate(keep); err != nil {
			_ = s.wal.Close()
			return nil, fmt.Errorf("fleet: open store: truncate torn tail: %w", err)
		}
		s.size = keep
	}
	s.enc = json.NewEncoder(&s.buf)
	s.removeStaleWALs()
	return s, nil
}

// snapshotEpoch reads the WAL epoch named by the snapshot's meta line;
// a missing snapshot means epoch 0.
func snapshotEpoch(path string) (uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("fleet: open store: %w", err)
	}
	defer f.Close()
	var meta Record
	if err := json.NewDecoder(bufio.NewReader(f)).Decode(&meta); err != nil {
		return 0, fmt.Errorf("fleet: open store: %s: %w", filepath.Base(path), err)
	}
	if meta.Kind != recordMeta {
		return 0, fmt.Errorf("fleet: open store: %s does not start with a meta record", filepath.Base(path))
	}
	return meta.Epoch, nil
}

// completeWALPrefix returns the length of the WAL's complete-record prefix:
// everything up to and including the last newline. Every record is one
// newline-terminated line whose body cannot contain a raw newline (JSON
// strings escape them), so any bytes after the last newline are a torn final
// write.
func completeWALPrefix(path string, size int64) (int64, error) {
	if size == 0 {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("fleet: open store: %w", err)
	}
	defer f.Close()
	var keep, off int64
	buf := make([]byte, 64<<10)
	for {
		n, err := f.Read(buf)
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			keep = off + int64(i) + 1
		}
		off += int64(n)
		if err == io.EOF {
			return keep, nil
		}
		if err != nil {
			return 0, fmt.Errorf("fleet: open store: %w", err)
		}
	}
}

// removeStaleWALs deletes WAL files from other epochs: either superseded by
// a snapshot or created by a WriteSnapshot whose rename never landed.
func (s *FileStore) removeStaleWALs() {
	matches, _ := filepath.Glob(filepath.Join(s.dir, "wal-*.jsonl"))
	keep := walName(s.epoch)
	for _, m := range matches {
		if filepath.Base(m) != keep {
			_ = os.Remove(m)
		}
	}
}

// Append implements Store. The record is marshalled off-file and written in
// one call; on a failed or short write the WAL is truncated back to the
// pre-record offset, so an append error never leaves a torn line for later
// appends to bury (Replay tolerates a torn record only at EOF). With
// WithSync, Append returns only after the record is fsynced (group-commit:
// one fsync covers every record written before it).
func (s *FileStore) Append(rec Record) error {
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		return ErrClosed
	}
	s.buf.Reset()
	if err := s.enc.Encode(rec); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("fleet: append: %w", err)
	}
	line := s.buf.Bytes()
	var n int
	var err error
	if s.hooks.AppendWrite != nil {
		n, err = s.hooks.AppendWrite(s.wal, line)
	} else {
		n, err = s.wal.Write(line)
	}
	if err == nil && n < len(line) {
		err = io.ErrShortWrite
	}
	if err != nil {
		if n > 0 {
			if terr := s.wal.Truncate(s.size); terr != nil {
				// The WAL now ends in garbage that cannot be removed; close the
				// store (fail-closed) rather than append after a torn line.
				_ = s.wal.Close()
				s.wal = nil
				s.mu.Unlock()
				return fmt.Errorf("fleet: append: %v; truncate failed, store closed: %w", err, terr)
			}
		}
		s.mu.Unlock()
		return fmt.Errorf("fleet: append: %w", err)
	}
	s.size += int64(n)
	s.writes++
	mine := s.writes
	s.mu.Unlock()
	if s.fsync {
		return s.syncTo(mine)
	}
	return nil
}

// syncTo makes the mine'th write durable. Group commit: the first appender
// through syncMu fsyncs once for every write that landed before it; appenders
// piled up behind it find their write already covered and return without
// syncing. After a WAL rotation the superseded epoch's unsynced tail is dead
// by contract (WriteSnapshot's recs replace it), so syncing the current file
// is always sufficient.
func (s *FileStore) syncTo(mine uint64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced >= mine {
		return nil
	}
	s.mu.Lock()
	cur, wal := s.writes, s.wal
	s.mu.Unlock()
	if wal == nil {
		return nil // Close fsynced on the way out
	}
	if err := wal.Sync(); err != nil {
		return fmt.Errorf("fleet: append sync: %w", err)
	}
	s.synced = cur
	return nil
}

// Replay implements Store. The snapshot is written atomically and must parse
// completely; the WAL may end in a torn record (the store does not fsync per
// append, so a crash can cut the final line short) — the torn tail is
// skipped, losing at most that one record, instead of bricking the restart.
func (s *FileStore) Replay(fn func(Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	skipMeta := func(rec Record) error {
		if rec.Kind == recordMeta {
			return nil
		}
		return fn(rec)
	}
	if err := replayFile(filepath.Join(s.dir, snapshotFile), skipMeta, false); err != nil {
		return err
	}
	return replayFile(filepath.Join(s.dir, walName(s.epoch)), skipMeta, true)
}

func replayFile(path string, fn func(Record) error, tolerateTornTail bool) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleet: replay: %w", err)
	}
	defer f.Close()
	// json.Encoder writes exactly one newline-terminated record per Append,
	// so the file parses line by line; only the final line can be torn.
	r := bufio.NewReader(f)
	for {
		line, readErr := r.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if err := json.Unmarshal(line, &rec); err != nil {
				if tolerateTornTail && readErr == io.EOF {
					return nil // torn trailing record from a crash mid-append
				}
				return fmt.Errorf("fleet: replay %s: %w", filepath.Base(path), err)
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
		if readErr == io.EOF {
			return nil
		}
		if readErr != nil {
			return fmt.Errorf("fleet: replay %s: %w", filepath.Base(path), readErr)
		}
	}
}

// WriteSnapshot implements Store. The snapshot's first line names the NEW
// (empty) WAL epoch; the rename is the commit point that atomically retires
// the old epoch's log. A failure after the rename (the commit may or may not
// be durable) closes the store fail-closed: continuing to append to the old
// epoch's WAL while the on-disk snapshot names the new one would silently
// disown every later record on restart.
func (s *FileStore) WriteSnapshot(recs []Record) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return ErrClosed
	}
	next := s.epoch + 1
	if err := s.fault(StepWALCreate); err != nil {
		return err
	}
	newWAL, err := os.OpenFile(filepath.Join(s.dir, walName(next)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	if err := s.writeSnapshotFile(tmp, next, recs); err != nil {
		newWAL.Close()
		return err
	}
	if err := s.fault(StepRename); err != nil {
		newWAL.Close()
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		newWAL.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	// The rename (and the new WAL's directory entry) must be durable before
	// the old epoch is abandoned: otherwise a power loss could revive the old
	// snapshot, whose epoch would disown — and removeStaleWALs then delete —
	// every record appended to the new WAL since.
	err = s.fault(StepDirSync)
	if err == nil {
		err = syncDir(s.dir)
	}
	if err != nil {
		// Past the commit point with unknown durability: poison the store.
		newWAL.Close()
		_ = s.wal.Close()
		s.wal = nil
		return err
	}
	// Committed: appends now belong to the new epoch; the old log is dead.
	_ = s.fault(StepCommit) // crash-only hook; the commit already happened
	old, oldEpoch := s.wal, s.epoch
	s.wal, s.epoch, s.size = newWAL, next, 0
	_ = old.Close()
	_ = os.Remove(filepath.Join(s.dir, walName(oldEpoch)))
	return nil
}

// syncDir fsyncs a directory so renames and file creations inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return nil
}

func (s *FileStore) writeSnapshotFile(path string, epoch uint64, recs []Record) error {
	if err := s.fault(StepTempWrite); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	if err := enc.Encode(Record{Kind: recordMeta, Epoch: epoch}); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("fleet: snapshot: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := s.fault(StepTempSync); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleet: snapshot: %w", err)
	}
	return nil
}

// Close implements Store. With WithSync, the WAL is fsynced one last time so
// no acknowledged append rides only the page cache past Close.
func (s *FileStore) Close() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	var serr error
	if s.fsync {
		serr = s.wal.Sync()
	}
	err := s.wal.Close()
	s.wal = nil
	if err == nil {
		err = serr
	}
	return err
}
