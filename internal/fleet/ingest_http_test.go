package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ingest"
	"repro/internal/lang"
	"repro/internal/registry"
	"repro/internal/vocab"
)

// TestErrorStatusTable pins the sentinel-error → HTTP status mapping shared
// by the stock handler and the fast sink.
func TestErrorStatusTable(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrUnknownUser, http.StatusNotFound},
		{ErrForbidden, http.StatusForbidden},
		{ErrInconsistent, http.StatusUnprocessableEntity},
		{ErrClosed, http.StatusServiceUnavailable},
		{lang.ErrParse, http.StatusBadRequest},
		{core.ErrCompile, http.StatusBadRequest},
		{vocab.ErrDuplicate, http.StatusConflict},
		{registry.ErrNotFound, http.StatusNotFound},
		{ErrNoHome, http.StatusNotFound},
		{fmt.Errorf("wrapped: %w", ErrForbidden), http.StatusForbidden},
		{fmt.Errorf("anything else"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := errorStatus(c.err); got != c.want {
			t.Errorf("errorStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHTTPBodyCaps pins the per-route request-body limits: oversized bodies
// answer 413 on every decoding route, stock and fast alike.
func TestHTTPBodyCaps(t *testing.T) {
	hub := newTestHub(t, WithShards(1))
	ts := httptest.NewServer(NewHTTPHandler(hub,
		WithEventSink(NewEventSink(hub, ingest.Limits{}))))
	defer ts.Close()

	big := strings.Repeat("x", 80<<10)
	for _, route := range []string{
		"/fleet/homes/h/users",
		"/fleet/homes/h/rules",
		"/fleet/homes/h/events",
		"/fleet/homes/h/priority",
	} {
		body := fmt.Sprintf(`{"name":%q}`, big)
		resp, err := http.Post(ts.URL+route, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: oversized body → %d, want 413", route, resp.StatusCode)
		}
	}
}

// TestPostUsersReturnsNormalizedName pins the registration echo: the hub
// registers the normalized form, so the response must carry that name — the
// one later requests (rule owners, priorities) are matched against.
func TestPostUsersReturnsNormalizedName(t *testing.T) {
	hub := newTestHub(t, WithShards(1))
	ts := httptest.NewServer(NewHTTPHandler(hub))
	defer ts.Close()

	resp, body := doJSON(t, ts, "POST", "/fleet/homes/h/users",
		map[string]any{"name": "  ToM   SMITH "})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create user: %d %s", resp.StatusCode, body)
	}
	var name string
	if err := json.Unmarshal(body, &name); err != nil {
		t.Fatal(err)
	}
	if name != "tom smith" {
		t.Fatalf("echoed name = %q, want normalized %q", name, "tom smith")
	}
	users, err := hub.Users("h")
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0] != name {
		t.Fatalf("hub knows %v, response said %q", users, name)
	}
}

// TestEventSinkBackpressureForcedBacklog stalls a shard, builds a measurable
// backlog behind it, and asserts the sink sheds with 429 + Retry-After while
// the stalled work is still honored once released.
func TestEventSinkBackpressureForcedBacklog(t *testing.T) {
	hub := newTestHub(t, WithShards(1))
	sink := NewEventSink(hub, ingest.Limits{MaxBacklog: 8})
	ts := httptest.NewServer(NewHTTPHandler(hub, WithEventSink(sink)))
	defer ts.Close()

	// Stall the shard: a task that blocks its goroutine until released.
	release := make(chan struct{})
	stalled := make(chan struct{})
	if err := hub.send("h", task{home: "h", fn: func(*Home) {
		close(stalled)
		<-release
	}}); err != nil {
		t.Fatal(err)
	}
	<-stalled

	// Build a backlog past the shed threshold.
	for i := 0; i < 20; i++ {
		postTemp(t, hub, "h", "20")
	}
	// Backlog reads the mailbox directly — HomeStats would block behind the
	// stalled shard here, which is exactly why the admission signal must not
	// run through the shard goroutine.
	if q := hub.Backlog("h"); q <= 8 {
		t.Fatalf("backlog = %d, want > 8", q)
	}

	resp, err := http.Post(ts.URL+"/fleet/homes/h/events", "application/json",
		strings.NewReader(`{"deviceType":"d","name":"n","vars":{"temperature":"21"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated shard → %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", ra)
	}
	close(release)
	if err := hub.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if q := hub.Backlog("h"); q != 0 {
		t.Fatalf("backlog after release = %d, want 0", q)
	}
	if st, err := hub.HomeStats("h"); err != nil || st.Backlog != 0 {
		t.Fatalf("HomeStats after drain = %+v, %v", st, err)
	}
	// The queued (admitted) events were all applied, none dropped.
	stats, err := hub.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != 20 {
		t.Fatalf("events = %d, want the 20 admitted posts", stats.Events)
	}
	if len(stats.ShardQueues) != 1 || stats.ShardQueues[0] != 0 {
		t.Fatalf("shard queues = %v", stats.ShardQueues)
	}
}

// postBody POSTs raw bytes to an event route and returns the status code.
func postBody(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestEventSinkOracleEquivalence feeds the same body bytes through the fast
// sink and the stock handler (on twin hubs) and asserts the engine-observed
// outcome — fired logs, owners, stats — is identical.
func TestEventSinkOracleEquivalence(t *testing.T) {
	fast := newTestHub(t, WithShards(1))
	oracle := newTestHub(t, WithShards(1))
	fastTS := httptest.NewServer(NewHTTPHandler(fast,
		WithEventSink(NewEventSink(fast, ingest.Limits{}))))
	defer fastTS.Close()
	oracleTS := httptest.NewServer(NewHTTPHandler(oracle))
	defer oracleTS.Close()
	seedHome(t, fast, "h")
	seedHome(t, oracle, "h")

	bodies := []string{
		// Steady-state sensor churn, async.
		`{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","vars":{"temperature":"31","humidity":"70"}}`,
		`{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","vars":{"temperature":"20"}}`,
		// Escaped keys, unicode, unknown fields, duplicate members.
		`{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","extra":[1,{"a":null}],"vars":{"temperature":"29.5","temperature":"31.5"}}`,
		// Presence + arrival specials.
		`{"deviceType":"sensor","name":"s","location":"hall","vars":{"presence-tom":"living room","event":"tom|come home|1"}}`,
		// Sync post closes each burst so both hubs observe a settled state.
		`{"deviceType":"` + device.TypeThermometer + `","name":"thermometer","location":"living room","vars":{"temperature":"32"},"sync":true}`,
	}
	for i, b := range bodies {
		fr := postBody(t, fastTS.URL+"/fleet/homes/h/events", []byte(b))
		or := postBody(t, oracleTS.URL+"/fleet/homes/h/events", []byte(b))
		if fr.StatusCode != or.StatusCode {
			t.Fatalf("body %d: fast %d, oracle %d", i, fr.StatusCode, or.StatusCode)
		}
	}
	if err := fast.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Quiesce(); err != nil {
		t.Fatal(err)
	}

	fLog, err1 := fast.Log("h")
	oLog, err2 := oracle.Log("h")
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(fLog) != len(oLog) {
		t.Fatalf("fired %d vs oracle %d", len(fLog), len(oLog))
	}
	for i := range fLog {
		if fLog[i].Rule.ID != oLog[i].Rule.ID || !fLog[i].Time.Equal(oLog[i].Time) {
			t.Fatalf("log[%d]: fast %v@%v, oracle %v@%v",
				i, fLog[i].Rule.ID, fLog[i].Time, oLog[i].Rule.ID, oLog[i].Time)
		}
	}
	fOwners, _ := fast.Owners("h")
	oOwners, _ := oracle.Owners("h")
	if !reflect.DeepEqual(fOwners, oOwners) {
		t.Fatalf("owners diverge: fast %v, oracle %v", fOwners, oOwners)
	}
	fCtx, _ := fast.Context("h")
	oCtx, _ := oracle.Context("h")
	if fAt, oAt := fCtx.At("tom", "living room"), oCtx.At("tom", "living room"); !fAt || fAt != oAt {
		t.Fatalf("tom at living room: fast %v, oracle %v (presence event lost?)", fAt, oAt)
	}
	fStats, _ := fast.Stats()
	oStats, _ := oracle.Stats()
	if fStats.Events != oStats.Events {
		t.Fatalf("events: fast %d, oracle %d", fStats.Events, oStats.Events)
	}
}

// TestEventSinkSaturation is the acceptance scenario: on one shard, an
// over-rate flood home is shed with 429 + Retry-After while an in-budget
// calm home on the same shard keeps evaluating — including the dispatch
// feedback its firings generate (the actuated air conditioner reports the
// cooled temperature back into the hub, past admission control). The stock
// handler on a twin hub, fed exactly the admitted bodies, is the oracle the
// surviving state must match.
func TestEventSinkSaturation(t *testing.T) {
	feedback := func(hubp **Hub, count *int, mu *sync.Mutex) Dispatcher {
		return func(home string, _ core.DeviceRef, _ core.Action) error {
			mu.Lock()
			*count++
			mu.Unlock()
			// Dispatch feedback enters through PostEvent directly: it must
			// never compete with external clients for admission.
			return (*hubp).PostEvent(home, device.TypeThermometer, "thermometer",
				"living room", map[string]string{"temperature": "20"})
		}
	}
	var fastHub, oracleHub *Hub
	var mu sync.Mutex
	fastFired, oracleFired := 0, 0
	fastHub = newTestHub(t, WithShards(1), WithDispatcher(feedback(&fastHub, &fastFired, &mu)))
	oracleHub = newTestHub(t, WithShards(1), WithDispatcher(feedback(&oracleHub, &oracleFired, &mu)))

	// Admission: sustained 1 ev/s, burst 3, frozen clock — so exactly the
	// first 3 posts of each home are in budget.
	now := time.Unix(1_000_000, 0)
	adm := ingest.NewAdmission(ingest.Limits{Rate: 1, Burst: 3}, fastHub.Backlog,
		ingest.WithAdmissionClock(func() time.Time { return now }))
	fastTS := httptest.NewServer(NewHTTPHandler(fastHub,
		WithEventSink(NewEventSink(fastHub, ingest.Limits{}, ingest.WithAdmission(adm)))))
	defer fastTS.Close()
	oracleTS := httptest.NewServer(NewHTTPHandler(oracleHub))
	defer oracleTS.Close()

	for _, hub := range []*Hub{fastHub, oracleHub} {
		seedHome(t, hub, "calm")
		seedHome(t, hub, "flood")
	}

	// Each sync body waits for evaluation AND its dispatch feedback is
	// enqueued before the ack, so the replay order below is deterministic.
	body := func(temp string) []byte {
		return []byte(`{"deviceType":"` + device.TypeThermometer +
			`","name":"thermometer","location":"living room","vars":{"temperature":"` +
			temp + `"},"sync":true}`)
	}

	// The flood home burns its burst and keeps hammering: 3 admitted, the
	// rest shed with 429 + Retry-After.
	var admitted [][2]string // (home, body) pairs the oracle replays
	shed := 0
	for i := 0; i < 12; i++ {
		b := body("31")
		resp := postBody(t, fastTS.URL+"/fleet/homes/flood/events", b)
		switch resp.StatusCode {
		case http.StatusOK:
			admitted = append(admitted, [2]string{"flood", string(b)})
		case http.StatusTooManyRequests:
			shed++
			if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
				t.Fatalf("shed response missing Retry-After (got %q)", ra)
			}
		default:
			t.Fatalf("flood post %d: status %d", i, resp.StatusCode)
		}
		// The calm home stays in budget: one post per three flood posts.
		if i%4 == 3 {
			b := body("31")
			resp := postBody(t, fastTS.URL+"/fleet/homes/calm/events", b)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("calm post at flood step %d: status %d — in-budget home was starved", i, resp.StatusCode)
			}
			admitted = append(admitted, [2]string{"calm", string(b)})
		}
	}
	if shed != 9 {
		t.Fatalf("shed %d flood posts, want 9 of 12", shed)
	}

	// Oracle replay: the same admitted bodies, same order, stock handler.
	for _, ab := range admitted {
		resp := postBody(t, oracleTS.URL+"/fleet/homes/"+ab[0]+"/events", []byte(ab[1]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oracle replay %s: status %d", ab[0], resp.StatusCode)
		}
	}
	for _, hub := range []*Hub{fastHub, oracleHub} {
		if err := hub.Quiesce(); err != nil { // drain trailing feedback
			t.Fatal(err)
		}
		if err := hub.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}

	// Every admitted 31° fires (its feedback cools the home back down before
	// the next sync post), so calm fired 3× and flood fired 3× on each hub —
	// and every firing's feedback event was ingested, never shed.
	mu.Lock()
	ff, of := fastFired, oracleFired
	mu.Unlock()
	if ff != of {
		t.Fatalf("dispatch count: fast %d, oracle %d", ff, of)
	}
	for _, home := range []string{"calm", "flood"} {
		fLog, _ := fastHub.Log(home)
		oLog, _ := oracleHub.Log(home)
		if len(fLog) != len(oLog) || len(fLog) == 0 {
			t.Fatalf("%s: fired %d vs oracle %d", home, len(fLog), len(oLog))
		}
		fCtx, _ := fastHub.Context(home)
		oCtx, _ := oracleHub.Context(home)
		if fv, fok := fCtx.Number("temperature"); true {
			ov, ook := oCtx.Number("temperature")
			if fok != ook || fv != ov {
				t.Fatalf("%s: temperature fast %v,%v oracle %v,%v — lost feedback event", home, fv, fok, ov, ook)
			}
			if fv != 20 {
				t.Fatalf("%s: temperature = %v, want 20 (the feedback write)", home, fv)
			}
		}
	}
	if calmLog, _ := fastHub.Log("calm"); len(calmLog) != 3 {
		t.Fatalf("calm fired %d times, want every one of its 3 admitted events", len(calmLog))
	}
	st, _ := fastHub.Stats()
	// 6 admitted posts + 6 feedback events; the 9 shed posts never reached
	// the hub.
	if st.Events != 12 {
		t.Fatalf("hub accepted %d events, want 12 (6 admitted + 6 feedback)", st.Events)
	}
}
