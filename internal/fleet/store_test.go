package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// populate fills a hub with a few homes' worth of durable state: users,
// favourites, user-defined words, rules (including one that uses a word),
// removals and priority orders.
func populate(t *testing.T, h *Hub) {
	t.Helper()
	for _, home := range []string{"alpha", "beta", "gamma"} {
		if err := h.RegisterUser(home, "tom"); err != nil {
			t.Fatal(err)
		}
		if err := h.RegisterUser(home, "emily", "roman holiday"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Submit(home, "Let's call the condition that humidity is higher than 65 % "+
			"and temperature is higher than 28 degrees hot and stuffy", "tom"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Submit(home, "If hot and stuffy, turn on the air conditioner "+
			"with 25 degrees of temperature setting.", "tom"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Submit(home, "Turn on the light at the hall.", "emily"); err != nil {
			t.Fatal(err)
		}
		if err := h.SetPriority(home, core.DeviceRef{Name: "air conditioner"},
			[]string{"emily", "tom"}, ""); err != nil {
			t.Fatal(err)
		}
	}
	// Divergence between homes: beta loses emily's rule.
	if err := h.RemoveRule("beta", "emily-2"); err != nil {
		t.Fatal(err)
	}
}

// verifyRehydrated asserts the state written by populate, and that the
// revived homes still compile against their word definitions and evaluate.
func verifyRehydrated(t *testing.T, h *Hub) {
	t.Helper()
	for _, home := range []string{"alpha", "beta", "gamma"} {
		users, err := h.Users(home)
		if err != nil {
			t.Fatal(err)
		}
		if len(users) != 2 {
			t.Fatalf("%s: users = %v", home, users)
		}
		rules, err := h.Rules(home)
		if err != nil {
			t.Fatal(err)
		}
		want := 2
		if home == "beta" {
			want = 1
		}
		if len(rules) != want {
			t.Fatalf("%s: rules = %d, want %d", home, len(rules), want)
		}
		if rules[0].ID != "tom-1" {
			t.Fatalf("%s: rule id = %q, want preserved id tom-1", home, rules[0].ID)
		}
		orders, err := h.PriorityOrders(home, core.DeviceRef{Name: "air conditioner"})
		if err != nil {
			t.Fatal(err)
		}
		if len(orders) != 1 || orders[0].Users[0] != "emily" {
			t.Fatalf("%s: orders = %v", home, orders)
		}
		// The rehydrated word still parses in new submissions.
		if _, err := h.Submit(home, "If hot and stuffy, turn on the fan.", "tom"); err != nil {
			t.Fatalf("%s: resubmit with rehydrated word: %v", home, err)
		}
		// And the rehydrated rule still fires.
		if err := h.PostEventSync(home, device.TypeThermometer, "thermometer", "living room",
			map[string]string{"temperature": "31", "humidity": "70"}); err != nil {
			t.Fatal(err)
		}
		log, err := h.Log(home)
		if err != nil {
			t.Fatal(err)
		}
		if len(log) == 0 {
			t.Fatalf("%s: rehydrated rule did not fire", home)
		}
	}
}

// TestHubRestartRehydratesFromFileStore is the ISSUE's acceptance test: a
// hub restarted over the same file-backed store rehydrates every home's
// rules (plus users, words and priorities), with rule ids preserved.
func TestHubRestartRehydratesFromFileStore(t *testing.T) {
	dir := t.TempDir()
	open := func() *Hub {
		st, err := OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHub(WithShards(2), WithClock(testClock()), WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1 := open()
	populate(t, h1)
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := open()
	defer func() { _ = h2.Close() }()
	verifyRehydrated(t, h2)
}

// TestHubCompactSnapshotsAndTruncates checks snapshot/replay: after Compact
// the WAL is empty, the snapshot carries the whole state, and a third
// restart still rehydrates.
func TestHubCompactSnapshotsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	open := func() *Hub {
		st, err := OpenFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHub(WithShards(2), WithClock(testClock()), WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1 := open()
	populate(t, h1)
	if err := h1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatalf("epoch-0 wal still present after compact (err=%v)", err)
	}
	wal, err := os.Stat(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if wal.Size() != 0 {
		t.Fatalf("epoch-1 wal size after compact = %d, want 0", wal.Size())
	}
	snap, err := os.Stat(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Size() == 0 {
		t.Fatal("snapshot is empty")
	}
	// Crash-consistency: even if the retired WAL had survived the crash (the
	// rename landed but the delete did not), replay must ignore it — the
	// snapshot names the new epoch.
	if err := os.WriteFile(filepath.Join(dir, walName(0)),
		[]byte(`{"home":"alpha","kind":"user","user":"tom"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := open()
	defer func() { _ = h2.Close() }()
	verifyRehydrated(t, h2)
}

// TestReplayToleratesTornWALTail checks crash recovery: appends are not
// fsynced, so a crash can leave a half-written final WAL line. Replay must
// apply every complete record and skip the torn tail instead of refusing to
// start the hub.
func TestReplayToleratesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := NewHub(WithShards(1), WithClock(testClock()), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if err := h1.RegisterUser("home", "tom"); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.Submit("home", hotRule, "tom"); err != nil {
		t.Fatal(err)
	}
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a truncated record at the end of the WAL.
	wal, err := os.OpenFile(filepath.Join(dir, walName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.WriteString(`{"home":"home","kind":"rule","id":"tom-9","ow`); err != nil {
		t.Fatal(err)
	}
	_ = wal.Close()

	st2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHub(WithShards(1), WithClock(testClock()), WithStore(st2))
	if err != nil {
		t.Fatalf("restart over torn WAL failed: %v", err)
	}
	defer func() { _ = h2.Close() }()
	rules, err := h2.Rules("home")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].ID != "tom-1" {
		t.Fatalf("rehydrated rules = %v, want the one complete record", rules)
	}
	// Direct torn-tail replay still succeeds at the file level.
	if err := replayFile(filepath.Join(dir, walName(0)), func(Record) error { return nil }, true); err != nil {
		t.Fatalf("torn tail replay: %v", err)
	}
}

// TestConcurrentCompact hammers Compact from several goroutines; without
// serialization two compactors' pause tasks can interleave across shards and
// deadlock the whole hub.
func TestConcurrentCompact(t *testing.T) {
	st := NewMemStore()
	h, err := NewHub(WithShards(4), WithClock(testClock()), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	if err := h.RegisterUser("home", "tom"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- h.Compact() }()
	}
	timeout := time.After(30 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("concurrent Compact deadlocked")
		}
	}
	if _, err := h.Users("home"); err != nil {
		t.Fatalf("hub unusable after concurrent compacts: %v", err)
	}
}

// failingStore wraps MemStore and fails Append on demand.
type failingStore struct {
	*MemStore
	fail bool
}

func (f *failingStore) Append(rec Record) error {
	if f.fail {
		return os.ErrClosed
	}
	return f.MemStore.Append(rec)
}

// TestAppendFailureRollsBack checks that a mutation whose store append fails
// is undone, so in-memory state never diverges from what a restart would
// rehydrate.
func TestAppendFailureRollsBack(t *testing.T) {
	st := &failingStore{MemStore: NewMemStore()}
	h, err := NewHub(WithShards(1), WithClock(testClock()), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	if err := h.RegisterUser("home", "tom"); err != nil {
		t.Fatal(err)
	}

	st.fail = true
	if _, err := h.Submit("home", hotRule, "tom"); err == nil {
		t.Fatal("submit with failing store must error")
	}
	if err := h.RegisterUser("home", "emily"); err == nil {
		t.Fatal("register with failing store must error")
	}
	st.fail = false

	rules, err := h.Rules("home")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("rolled-back rule still registered: %v", rules)
	}
	users, err := h.Users("home")
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 1 || users[0] != "tom" {
		t.Fatalf("rolled-back user still registered: %v", users)
	}
	// The freed rule id is reusable and the home still works.
	res, err := h.Submit("home", hotRule, "tom")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rule.ID != "tom-1" && res.Rule.ID != "tom-2" {
		t.Fatalf("unexpected rule id %q", res.Rule.ID)
	}
}

// TestReadsDoNotCreateHomes checks that probing unknown home ids through
// read-only operations returns empty results without growing the fleet.
func TestReadsDoNotCreateHomes(t *testing.T) {
	h, err := NewHub(WithShards(2), WithClock(testClock()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h.Close() }()
	for i := 0; i < 10; i++ {
		home := fmt.Sprintf("probe-%d", i)
		if users, err := h.Users(home); err != nil || len(users) != 0 {
			t.Fatalf("Users(%s) = %v, %v", home, users, err)
		}
		if rules, err := h.Rules(home); err != nil || len(rules) != 0 {
			t.Fatalf("Rules(%s) = %v, %v", home, rules, err)
		}
		if log, err := h.Log(home); err != nil || len(log) != 0 {
			t.Fatalf("Log(%s) = %v, %v", home, log, err)
		}
		if err := h.RemoveRule(home, "x"); err == nil {
			t.Fatalf("RemoveRule on unknown home must error")
		}
		if err := h.Tick(home); err != nil {
			t.Fatal(err)
		}
	}
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Homes != 0 {
		t.Fatalf("read probes materialized %d homes", st.Homes)
	}
}

// TestMemStoreRoundTrip exercises the in-memory store through the same
// hub lifecycle (minus process restarts).
func TestMemStoreRoundTrip(t *testing.T) {
	st := NewMemStore()
	h1, err := NewHub(WithShards(2), WithClock(testClock()), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	populate(t, h1)
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := NewHub(WithShards(3), WithClock(testClock()), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = h2.Close() }()
	verifyRehydrated(t, h2)
}
