package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/registry"
	"repro/internal/vocab"
)

// HTTPHandler exposes a hub's ingestion and management operations as a JSON
// API — the fleet-scale counterpart of the single-home interface-device API:
//
//	POST   /fleet/homes/{home}/users     {"name","favorites"}     register a user
//	GET    /fleet/homes/{home}/users                              list users
//	POST   /fleet/homes/{home}/rules     {"source","owner"}       submit a CADEL command
//	GET    /fleet/homes/{home}/rules                              list rules
//	DELETE /fleet/homes/{home}/rules/{id}                         remove a rule
//	POST   /fleet/homes/{home}/events    {"deviceType","name",    ingest a device event
//	                                      "location","vars"}      (async, 202)
//	POST   /fleet/homes/{home}/priority  {"device","users",       set a priority order
//	                                      "context"}
//	GET    /fleet/homes/{home}/log                                fired actions of the home
//	GET    /fleet/homes/{home}/stats                              home counters + symbol footprint
//	POST   /fleet/homes/{home}/compact                            force a symbol-compaction epoch
//	GET    /fleet/homes                                           list home ids
//	GET    /fleet/stats                                           hub counters
//	POST   /fleet/compact                                         snapshot + truncate store
type HTTPHandler struct {
	hub *Hub
	mux *http.ServeMux
}

// NewHTTPHandler builds the fleet API for a hub.
func NewHTTPHandler(hub *Hub) *HTTPHandler {
	h := &HTTPHandler{hub: hub, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /fleet/homes/{home}/users", h.postUsers)
	h.mux.HandleFunc("GET /fleet/homes/{home}/users", h.getUsers)
	h.mux.HandleFunc("POST /fleet/homes/{home}/rules", h.postRules)
	h.mux.HandleFunc("GET /fleet/homes/{home}/rules", h.getRules)
	h.mux.HandleFunc("DELETE /fleet/homes/{home}/rules/{id}", h.deleteRule)
	h.mux.HandleFunc("POST /fleet/homes/{home}/events", h.postEvents)
	h.mux.HandleFunc("POST /fleet/homes/{home}/priority", h.postPriority)
	h.mux.HandleFunc("GET /fleet/homes/{home}/log", h.getLog)
	h.mux.HandleFunc("GET /fleet/homes/{home}/stats", h.getHomeStats)
	h.mux.HandleFunc("POST /fleet/homes/{home}/compact", h.postHomeCompact)
	h.mux.HandleFunc("GET /fleet/homes", h.getHomes)
	h.mux.HandleFunc("GET /fleet/stats", h.getStats)
	h.mux.HandleFunc("POST /fleet/compact", h.postCompact)
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownUser):
		status = http.StatusNotFound
	case errors.Is(err, ErrForbidden):
		status = http.StatusForbidden
	case errors.Is(err, ErrInconsistent):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, lang.ErrParse), errors.Is(err, core.ErrCompile):
		status = http.StatusBadRequest
	case errors.Is(err, vocab.ErrDuplicate):
		status = http.StatusConflict
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, ErrNoHome):
		status = http.StatusNotFound
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return false
	}
	return true
}

// ---- users ----

type userRequest struct {
	Name      string   `json:"name"`
	Favorites []string `json:"favorites,omitempty"`
}

func (h *HTTPHandler) postUsers(w http.ResponseWriter, r *http.Request) {
	var req userRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if vocab.Normalize(req.Name) == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "fleet: empty user name"})
		return
	}
	if err := h.hub.RegisterUser(r.PathValue("home"), req.Name, req.Favorites...); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, req.Name)
}

func (h *HTTPHandler) getUsers(w http.ResponseWriter, r *http.Request) {
	users, err := h.hub.Users(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, users)
}

// ---- rules ----

type ruleRequest struct {
	Source string `json:"source"`
	Owner  string `json:"owner"`
}

type ruleBody struct {
	ID     string `json:"id"`
	Owner  string `json:"owner"`
	Device string `json:"device"`
	Action string `json:"action"`
	Cond   string `json:"cond"`
	Source string `json:"source"`
}

type submitBody struct {
	Rule        *ruleBody  `json:"rule,omitempty"`
	DefinedWord string     `json:"definedWord,omitempty"`
	Conflicts   []ruleBody `json:"conflicts,omitempty"`
}

func toRuleBody(r *core.Rule) ruleBody {
	return ruleBody{
		ID:     r.ID,
		Owner:  r.Owner,
		Device: r.Device.Key(),
		Action: r.Action.String(),
		Cond:   r.Cond.String(),
		Source: r.Source,
	}
}

func (h *HTTPHandler) postRules(w http.ResponseWriter, r *http.Request) {
	var req ruleRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := h.hub.Submit(r.PathValue("home"), req.Source, req.Owner)
	if err != nil {
		writeError(w, err)
		return
	}
	body := submitBody{DefinedWord: res.DefinedWord}
	if res.Rule != nil {
		rb := toRuleBody(res.Rule)
		body.Rule = &rb
	}
	for _, c := range res.Conflicts {
		body.Conflicts = append(body.Conflicts, toRuleBody(c.Existing))
	}
	writeJSON(w, http.StatusCreated, body)
}

func (h *HTTPHandler) getRules(w http.ResponseWriter, r *http.Request) {
	rules, err := h.hub.Rules(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]ruleBody, 0, len(rules))
	for _, rule := range rules {
		out = append(out, toRuleBody(rule))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *HTTPHandler) deleteRule(w http.ResponseWriter, r *http.Request) {
	if err := h.hub.RemoveRule(r.PathValue("home"), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- events ----

type eventRequest struct {
	DeviceType string            `json:"deviceType"`
	Name       string            `json:"name"`
	Location   string            `json:"location,omitempty"`
	Vars       map[string]string `json:"vars"`
	// Sync makes the call wait until the home has evaluated the event.
	Sync bool `json:"sync,omitempty"`
}

func (h *HTTPHandler) postEvents(w http.ResponseWriter, r *http.Request) {
	var req eventRequest
	if !decodeBody(w, r, &req) {
		return
	}
	home := r.PathValue("home")
	var err error
	if req.Sync {
		err = h.hub.PostEventSync(home, req.DeviceType, req.Name, req.Location, req.Vars)
	} else {
		err = h.hub.PostEvent(home, req.DeviceType, req.Name, req.Location, req.Vars)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}

// ---- priorities ----

type priorityRequest struct {
	Device  core.DeviceRef `json:"device"`
	Users   []string       `json:"users"`
	Context string         `json:"context,omitempty"`
}

func (h *HTTPHandler) postPriority(w http.ResponseWriter, r *http.Request) {
	var req priorityRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := h.hub.SetPriority(r.PathValue("home"), req.Device, req.Users, req.Context); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- log, homes, stats ----

type firedBody struct {
	Time   string `json:"time"`
	Rule   string `json:"rule"`
	Device string `json:"device"`
	Action string `json:"action"`
	Error  string `json:"error,omitempty"`
}

func (h *HTTPHandler) getLog(w http.ResponseWriter, r *http.Request) {
	log, err := h.hub.Log(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]firedBody, 0, len(log))
	for _, f := range log {
		fb := firedBody{
			Time:   f.Time.Format(time.RFC3339),
			Rule:   f.Rule.ID,
			Device: f.Rule.Device.Key(),
			Action: f.Rule.Action.String(),
		}
		if f.Err != nil {
			fb.Error = f.Err.Error()
		}
		out = append(out, fb)
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *HTTPHandler) getHomeStats(w http.ResponseWriter, r *http.Request) {
	st, err := h.hub.HomeStats(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// compactBody reports one forced symbol-compaction epoch. Compacted is
// false when the home's engine runs an oracle mode and holds no ids.
type compactBody struct {
	Compacted bool `json:"compacted"`
	engine.CompactStats
}

func (h *HTTPHandler) postHomeCompact(w http.ResponseWriter, r *http.Request) {
	st, compacted, err := h.hub.CompactHome(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, compactBody{Compacted: compacted, CompactStats: st})
}

func (h *HTTPHandler) getHomes(w http.ResponseWriter, _ *http.Request) {
	homes, err := h.hub.Homes()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, homes)
}

func (h *HTTPHandler) getStats(w http.ResponseWriter, _ *http.Request) {
	st, err := h.hub.Stats()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *HTTPHandler) postCompact(w http.ResponseWriter, _ *http.Request) {
	if err := h.hub.Compact(); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
