package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/rawhttp"
	"repro/internal/registry"
	"repro/internal/vocab"
)

// HTTPHandler exposes a hub's ingestion and management operations as a JSON
// API — the fleet-scale counterpart of the single-home interface-device API:
//
//	POST   /fleet/homes/{home}/users     {"name","favorites"}     register a user
//	GET    /fleet/homes/{home}/users                              list users
//	POST   /fleet/homes/{home}/rules     {"source","owner"}       submit a CADEL command
//	GET    /fleet/homes/{home}/rules                              list rules
//	DELETE /fleet/homes/{home}/rules/{id}                         remove a rule
//	POST   /fleet/homes/{home}/events    {"deviceType","name",    ingest a device event
//	                                      "location","vars"}      (async 202, sync 200)
//	POST   /fleet/homes/{home}/priority  {"device","users",       set a priority order
//	                                      "context"}
//	GET    /fleet/homes/{home}/log                                fired actions of the home
//	GET    /fleet/homes/{home}/stats                              home counters + symbol footprint
//	GET    /fleet/homes/{home}/trace  ?rule=&device=&n=           firing-trace ring: why each
//	                                                              device picked its rule
//	POST   /fleet/homes/{home}/compact                            force a symbol-compaction epoch
//	GET    /fleet/homes                                           list home ids
//	GET    /fleet/stats                                           hub counters + metric totals
//	POST   /fleet/compact                                         snapshot + truncate store
//	GET    /metrics                                               Prometheus text exposition
type HTTPHandler struct {
	hub       *Hub
	mux       *http.ServeMux
	eventSink http.Handler // non-nil replaces postEvents on the hot route
}

// HandlerOption configures NewHTTPHandler.
type HandlerOption interface{ applyHandler(*HTTPHandler) }

type handlerOptionFunc func(*HTTPHandler)

func (f handlerOptionFunc) applyHandler(h *HTTPHandler) { f(h) }

// WithEventSink routes POST /fleet/homes/{home}/events through sink — the
// wire-speed ingest path (see NewEventSink) — instead of the stock
// encoding/json handler. Every other route keeps the stock implementation.
func WithEventSink(sink http.Handler) HandlerOption {
	return handlerOptionFunc(func(h *HTTPHandler) { h.eventSink = sink })
}

// NewEventSink builds the fast event handler for a hub: the streaming
// decoder and pooled buffers of internal/ingest in front of PostEventFast,
// with admission control wired to the hub's shard-backlog signal and the
// hub's sentinel-error → status table, so the sink and the stock handler
// answer identically. Pass extra sink options (ingest.WithMaxBody, a test
// admission) after the limits.
func NewEventSink(hub *Hub, limits ingest.Limits, opts ...ingest.SinkOption) *ingest.Sink {
	base := []ingest.SinkOption{
		ingest.WithMaxBody(maxEventBody),
		ingest.WithAdmission(ingest.NewAdmission(limits, hub.Backlog)),
		ingest.WithSinkMetrics(hub.metrics),
		ingest.WithStatusMapper(errorStatus),
		ingest.WithRetryHinter(errorRetrySeconds),
	}
	return ingest.NewSink(hub, append(base, opts...)...)
}

// NewRawIngest builds the raw-socket HTTP/1.1 front end for the event fast
// route in front of sink — the SAME *ingest.Sink the net/http handler
// serves, so both transports draw on one admission budget, one body cap,
// and one error→status table, and the two cannot drift apart or let a home
// double its rate limit by splitting traffic. The hub's sharded metrics
// carry the connection counters. Extra rawhttp options (timeouts, header
// cap) append after the defaults.
func NewRawIngest(hub *Hub, sink *ingest.Sink, opts ...rawhttp.Option) *rawhttp.Server {
	base := []rawhttp.Option{rawhttp.WithMetrics(hub.metrics)}
	return rawhttp.NewServer(sink, append(base, opts...)...)
}

// NewHTTPHandler builds the fleet API for a hub.
func NewHTTPHandler(hub *Hub, opts ...HandlerOption) *HTTPHandler {
	h := &HTTPHandler{hub: hub, mux: http.NewServeMux()}
	for _, o := range opts {
		o.applyHandler(h)
	}
	h.mux.HandleFunc("POST /fleet/homes/{home}/users", h.postUsers)
	h.mux.HandleFunc("GET /fleet/homes/{home}/users", h.getUsers)
	h.mux.HandleFunc("POST /fleet/homes/{home}/rules", h.postRules)
	h.mux.HandleFunc("GET /fleet/homes/{home}/rules", h.getRules)
	h.mux.HandleFunc("DELETE /fleet/homes/{home}/rules/{id}", h.deleteRule)
	if h.eventSink != nil {
		h.mux.Handle("POST /fleet/homes/{home}/events", h.eventSink)
	} else {
		h.mux.HandleFunc("POST /fleet/homes/{home}/events", h.postEvents)
	}
	h.mux.HandleFunc("POST /fleet/homes/{home}/priority", h.postPriority)
	h.mux.HandleFunc("GET /fleet/homes/{home}/log", h.getLog)
	h.mux.HandleFunc("GET /fleet/homes/{home}/stats", h.getHomeStats)
	h.mux.HandleFunc("GET /fleet/homes/{home}/trace", h.getTrace)
	h.mux.HandleFunc("POST /fleet/homes/{home}/compact", h.postHomeCompact)
	h.mux.HandleFunc("GET /fleet/homes", h.getHomes)
	h.mux.HandleFunc("GET /fleet/stats", h.getStats)
	h.mux.HandleFunc("POST /fleet/compact", h.postCompact)
	h.mux.HandleFunc("GET /metrics", h.getMetrics)
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// errorStatus maps the hub's sentinel errors to HTTP statuses. It is the
// single source of truth for both the stock handler (writeError) and the
// fast event sink's status mapper, so the two paths answer identically.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownUser):
		return http.StatusNotFound
	case errors.Is(err, ErrForbidden):
		return http.StatusForbidden
	case errors.Is(err, ErrInconsistent):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStoreDegraded):
		// Fail-closed write path: the durable store is unreachable, the
		// mutation was rolled back. writeError adds Retry-After from the
		// breaker's cool-down.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrHomeSealed):
		// The home is mid-migration; by the time the Retry-After elapses the
		// ring answers with a 307 to the new owner.
		return http.StatusServiceUnavailable
	case errors.Is(err, lang.ErrParse), errors.Is(err, core.ErrCompile):
		return http.StatusBadRequest
	case errors.Is(err, vocab.ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, registry.ErrNotFound), errors.Is(err, ErrNoHome):
		return http.StatusNotFound
	}
	return http.StatusInternalServerError
}

// errorRetrySeconds maps an error to the Retry-After hint in whole seconds
// (0 = no hint). Shared by the stock handler and the fast event sink, so a
// sealed or degraded home answers with the same cool-down on both paths.
func errorRetrySeconds(err error) int {
	var retryAfter time.Duration
	var de *DegradedError
	var se *SealedError
	switch {
	case errors.As(err, &de):
		retryAfter = de.RetryAfter
	case errors.As(err, &se):
		retryAfter = se.RetryAfter
	}
	if retryAfter <= 0 {
		return 0
	}
	return int((retryAfter + time.Second - 1) / time.Second)
}

func writeError(w http.ResponseWriter, err error) {
	if secs := errorRetrySeconds(err); secs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, errorStatus(err), errorBody{Error: err.Error()})
}

// Per-route request-body caps. Metadata bodies (a user, a priority order)
// are tiny; rule submissions carry CADEL source and events carry a vars
// object, so they get more headroom. All are far above any legitimate
// payload — the caps exist so a client cannot stream an unbounded body into
// the decoder.
const (
	maxMetaBody  = 16 << 10
	maxRuleBody  = 64 << 10
	maxEventBody = 64 << 10
)

// decodeBody decodes a JSON request body of at most limit bytes into v.
// Oversized bodies answer 413, malformed ones 400.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return true
	}
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		return false
	}
	writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	return false
}

// ---- users ----

type userRequest struct {
	Name      string   `json:"name"`
	Favorites []string `json:"favorites,omitempty"`
}

func (h *HTTPHandler) postUsers(w http.ResponseWriter, r *http.Request) {
	var req userRequest
	if !decodeBody(w, r, maxMetaBody, &req) {
		return
	}
	// The hub registers the normalized form; echo that, not the raw request
	// name, so clients address the user the hub actually knows.
	name := vocab.Normalize(req.Name)
	if name == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "fleet: empty user name"})
		return
	}
	if err := h.hub.RegisterUser(r.PathValue("home"), req.Name, req.Favorites...); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, name)
}

func (h *HTTPHandler) getUsers(w http.ResponseWriter, r *http.Request) {
	users, err := h.hub.Users(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, users)
}

// ---- rules ----

type ruleRequest struct {
	Source string `json:"source"`
	Owner  string `json:"owner"`
}

type ruleBody struct {
	ID     string `json:"id"`
	Owner  string `json:"owner"`
	Device string `json:"device"`
	Action string `json:"action"`
	Cond   string `json:"cond"`
	Source string `json:"source"`
}

type submitBody struct {
	Rule        *ruleBody  `json:"rule,omitempty"`
	DefinedWord string     `json:"definedWord,omitempty"`
	Conflicts   []ruleBody `json:"conflicts,omitempty"`
}

func toRuleBody(r *core.Rule) ruleBody {
	return ruleBody{
		ID:     r.ID,
		Owner:  r.Owner,
		Device: r.Device.Key(),
		Action: r.Action.String(),
		Cond:   r.Cond.String(),
		Source: r.Source,
	}
}

func (h *HTTPHandler) postRules(w http.ResponseWriter, r *http.Request) {
	var req ruleRequest
	if !decodeBody(w, r, maxRuleBody, &req) {
		return
	}
	res, err := h.hub.Submit(r.PathValue("home"), req.Source, req.Owner)
	if err != nil {
		writeError(w, err)
		return
	}
	body := submitBody{DefinedWord: res.DefinedWord}
	if res.Rule != nil {
		rb := toRuleBody(res.Rule)
		body.Rule = &rb
	}
	for _, c := range res.Conflicts {
		body.Conflicts = append(body.Conflicts, toRuleBody(c.Existing))
	}
	writeJSON(w, http.StatusCreated, body)
}

func (h *HTTPHandler) getRules(w http.ResponseWriter, r *http.Request) {
	rules, err := h.hub.Rules(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]ruleBody, 0, len(rules))
	for _, rule := range rules {
		out = append(out, toRuleBody(rule))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *HTTPHandler) deleteRule(w http.ResponseWriter, r *http.Request) {
	if err := h.hub.RemoveRule(r.PathValue("home"), r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- events ----

type eventRequest struct {
	DeviceType string            `json:"deviceType"`
	Name       string            `json:"name"`
	Location   string            `json:"location,omitempty"`
	Vars       map[string]string `json:"vars"`
	// Sync makes the call wait until the home has evaluated the event.
	Sync bool `json:"sync,omitempty"`
}

// postEvents is the stock event route — and the correctness oracle the fast
// sink is tested against. Status contract: an async post is acknowledged
// with 202 Accepted (the event is queued, evaluation happens later on the
// home's shard); a "sync":true post already waited for the home to evaluate
// before answering, so it returns 200 OK — the work is done, not pending.
func (h *HTTPHandler) postEvents(w http.ResponseWriter, r *http.Request) {
	var req eventRequest
	if !decodeBody(w, r, maxEventBody, &req) {
		return
	}
	home := r.PathValue("home")
	var err error
	if req.Sync {
		err = h.hub.PostEventSync(home, req.DeviceType, req.Name, req.Location, req.Vars)
	} else {
		err = h.hub.PostEvent(home, req.DeviceType, req.Name, req.Location, req.Vars)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Sync {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
}

// ---- priorities ----

type priorityRequest struct {
	Device  core.DeviceRef `json:"device"`
	Users   []string       `json:"users"`
	Context string         `json:"context,omitempty"`
}

func (h *HTTPHandler) postPriority(w http.ResponseWriter, r *http.Request) {
	var req priorityRequest
	if !decodeBody(w, r, maxMetaBody, &req) {
		return
	}
	if err := h.hub.SetPriority(r.PathValue("home"), req.Device, req.Users, req.Context); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---- log, homes, stats ----

type firedBody struct {
	Time   string `json:"time"`
	Rule   string `json:"rule"`
	Device string `json:"device"`
	Action string `json:"action"`
	Error  string `json:"error,omitempty"`
}

func (h *HTTPHandler) getLog(w http.ResponseWriter, r *http.Request) {
	log, err := h.hub.Log(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]firedBody, 0, len(log))
	for _, f := range log {
		fb := firedBody{
			Time:   f.Time.Format(time.RFC3339),
			Rule:   f.Rule.ID,
			Device: f.Rule.Device.Key(),
			Action: f.Rule.Action.String(),
		}
		if f.Err != nil {
			fb.Error = f.Err.Error()
		}
		out = append(out, fb)
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *HTTPHandler) getHomeStats(w http.ResponseWriter, r *http.Request) {
	st, err := h.hub.HomeStats(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// compactBody reports one forced symbol-compaction epoch. Compacted is
// false when the home's engine runs an oracle mode and holds no ids.
type compactBody struct {
	Compacted bool `json:"compacted"`
	engine.CompactStats
}

func (h *HTTPHandler) postHomeCompact(w http.ResponseWriter, r *http.Request) {
	st, compacted, err := h.hub.CompactHome(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, compactBody{Compacted: compacted, CompactStats: st})
}

func (h *HTTPHandler) getHomes(w http.ResponseWriter, _ *http.Request) {
	homes, err := h.hub.Homes()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, homes)
}

// statsBody extends the hub's counters with the metric registry's totals and
// the admission controller's shed counters, so one stats call answers "what
// is the fleet doing" without a second scrape.
type statsBody struct {
	Stats
	Totals    obs.Totals             `json:"totals"`
	Admission *ingest.AdmissionStats `json:"admission,omitempty"`
	Store     *storeStatsBody        `json:"store,omitempty"`
}

// storeStatsBody is the store-backend block of /fleet/stats: the metric
// registry's counters plus, for backends with a breaker (remote store), the
// live health snapshot.
type storeStatsBody struct {
	obs.StoreTotals
	Health *StoreHealth `json:"health,omitempty"`
}

func (h *HTTPHandler) getStats(w http.ResponseWriter, _ *http.Request) {
	st, err := h.hub.Stats()
	if err != nil {
		writeError(w, err)
		return
	}
	body := statsBody{Stats: st, Totals: h.hub.metrics.Totals()}
	if adm := h.admission(); adm != nil {
		s := adm.Stats()
		body.Admission = &s
	}
	if h.hub.store != nil {
		store := &storeStatsBody{StoreTotals: h.hub.metrics.StoreTotals()}
		if health, ok := h.hub.StoreHealth(); ok {
			store.Health = &health
			store.Degraded = health.Degraded // live truth beats the gauge
		}
		body.Store = store
	}
	writeJSON(w, http.StatusOK, body)
}

// admission digs the admission controller out of the configured event sink;
// nil when the stock handler serves events or admission is disabled.
func (h *HTTPHandler) admission() *ingest.Admission {
	if s, ok := h.eventSink.(*ingest.Sink); ok {
		return s.Admission()
	}
	return nil
}

// getMetrics is the Prometheus text endpoint: the registry's counters and
// histograms (flushed via the hub's barrier), plus the transport-side gauges
// that live outside the registry — admission shed counts, posted events and
// per-shard queue depths.
func (h *HTTPHandler) getMetrics(w http.ResponseWriter, _ *http.Request) {
	m := h.hub.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WritePrometheus(w)

	fmt.Fprintf(w, "# HELP cadel_events_posted_total Device events accepted by the hub.\n")
	fmt.Fprintf(w, "# TYPE cadel_events_posted_total counter\n")
	fmt.Fprintf(w, "cadel_events_posted_total %d\n", h.hub.EventsAccepted())

	if adm := h.admission(); adm != nil {
		st := adm.Stats()
		fmt.Fprintf(w, "# HELP cadel_ingest_shed_total Events refused by admission control.\n")
		fmt.Fprintf(w, "# TYPE cadel_ingest_shed_total counter\n")
		fmt.Fprintf(w, "cadel_ingest_shed_total{cause=\"rate\"} %d\n", st.ShedRate)
		fmt.Fprintf(w, "cadel_ingest_shed_total{cause=\"backlog\"} %d\n", st.ShedBacklog)
	}

	fmt.Fprintf(w, "# HELP cadel_shard_queue_depth Tasks waiting in each shard mailbox.\n")
	fmt.Fprintf(w, "# TYPE cadel_shard_queue_depth gauge\n")
	for i, depth := range h.hub.ShardQueues() {
		fmt.Fprintf(w, "cadel_shard_queue_depth{shard=\"%d\"} %d\n", i, depth)
	}
}

// getTrace serves a home's firing-trace ring with explain filters:
// ?device= keeps decisions for one device (by key or bare name), ?rule=
// keeps decisions where the rule won or lost, ?n= keeps the newest n passes.
func (h *HTTPHandler) getTrace(w http.ResponseWriter, r *http.Request) {
	traces, err := h.hub.Trace(r.PathValue("home"))
	if err != nil {
		writeError(w, err)
		return
	}
	q := r.URL.Query()
	traces = filterTraces(traces, q.Get("rule"), q.Get("device"))
	if nStr := q.Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "fleet: bad n"})
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:]
		}
	}
	if traces == nil {
		traces = []engine.PassTrace{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// filterTraces applies the rule/device explain filters: passes keep only
// matching decisions, and passes left with none are dropped entirely.
func filterTraces(traces []engine.PassTrace, rule, device string) []engine.PassTrace {
	if rule == "" && device == "" {
		return traces
	}
	out := make([]engine.PassTrace, 0, len(traces))
	for _, p := range traces {
		var decs []engine.TraceDecision
		for _, d := range p.Decisions {
			if device != "" && d.Device != device && !strings.HasSuffix(d.Device, "/"+device) {
				continue
			}
			if rule != "" && !decisionMentions(d, rule) {
				continue
			}
			decs = append(decs, d)
		}
		if len(decs) == 0 {
			continue
		}
		p.Decisions = decs
		out = append(out, p)
	}
	return out
}

func decisionMentions(d engine.TraceDecision, rule string) bool {
	if d.Winner == rule {
		return true
	}
	for _, l := range d.Losers {
		if l.Rule == rule {
			return true
		}
	}
	return false
}

func (h *HTTPHandler) postCompact(w http.ResponseWriter, _ *http.Request) {
	if err := h.hub.Compact(); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
