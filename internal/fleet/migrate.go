package fleet

import (
	"errors"

	"repro/internal/engine"
	"repro/internal/obs"
)

// This file is the hub's half of live home migration (see internal/ring for
// the coordinator): sealing a home against new writes, exporting its full
// state (durable records + volatile engine state), importing that state on a
// target hub without re-firing anything, and releasing ownership on the
// source once the target has acked.
//
// Protocol order on the source: SealHome → Quiesce (drain, repeated until
// the home's backlog is empty — dispatch-feedback chains keep draining
// through PostEventFeedback while the seal holds) → ExportHome → transfer →
// ReleaseHome after the target acks. On any failure before the ack:
// UnsealHome and the home keeps serving where it is.

// HomeExport is one home's complete migratable state: the durable store
// records (users, words, rules, priorities — rule ids preserved) plus the
// engine's volatile state (context values with original timestamps, the
// fired-action log).
type HomeExport struct {
	Home    string
	Records []Record
	State   *engine.StateExport
}

// sealedErr reports a SealedError when home is sealed for migration. The
// fast path is one atomic load (zero when nothing in the fleet is sealed),
// so the steady-state ingest path stays allocation-free.
func (h *Hub) sealedErr(home string) error {
	if h.sealedN.Load() == 0 {
		return nil
	}
	h.sealMu.RLock()
	_, sealed := h.sealedHomes[home]
	h.sealMu.RUnlock()
	if sealed {
		return &SealedError{Home: home, RetryAfter: DefaultSealRetryAfter}
	}
	return nil
}

// SealHome marks a home as migrating: every later mutation and external
// event post fails with a SealedError (HTTP: 503 + Retry-After) until
// UnsealHome or ReleaseHome. Events already enqueued still evaluate, and
// dispatch-feedback chains keep draining via PostEventFeedback. Sealing is
// idempotent; sealing a home that does not exist fails with ErrNoHome.
func (h *Hub) SealHome(home string) error {
	return h.do(home, func(hm *Home) error {
		if hm == nil {
			return ErrNoHome
		}
		h.sealMu.Lock()
		if _, ok := h.sealedHomes[home]; !ok {
			h.sealedHomes[home] = struct{}{}
			h.sealedN.Add(1)
		}
		h.sealMu.Unlock()
		return nil
	})
}

// UnsealHome lifts a migration seal (the abort path: transfer failed, the
// home keeps serving on this hub). Idempotent.
func (h *Hub) UnsealHome(home string) {
	h.sealMu.Lock()
	if _, ok := h.sealedHomes[home]; ok {
		delete(h.sealedHomes, home)
		h.sealedN.Add(-1)
	}
	h.sealMu.Unlock()
}

// SealedHomes reports how many homes are currently sealed for migration —
// a readiness signal (a draining node is not ready) and a /metrics gauge.
func (h *Hub) SealedHomes() int { return int(h.sealedN.Load()) }

// MetricsRegistry returns the hub's metrics registry without the flush
// barrier Metrics() runs. It is the write-side accessor migration and ring
// code record counters through; scrapers should keep using Metrics().
func (h *Hub) MetricsRegistry() *obs.Metrics { return h.metrics }

// ExportHome snapshots one home's durable records and volatile engine state
// on its shard goroutine. The caller is expected to have sealed the home and
// drained its backlog first (Quiesce until Backlog(home) == 0), so the
// export observes a settled home.
func (h *Hub) ExportHome(home string) (*HomeExport, error) {
	var (
		exp *HomeExport
		err error
	)
	done := make(chan struct{})
	if sendErr := h.send(home, task{home: home, shardFn: func(s *shard) {
		hm := s.homes[home]
		if hm == nil {
			err = ErrNoHome
			return
		}
		exp = &HomeExport{Home: home, Records: hm.snapshotRecords(), State: hm.engine.ExportState()}
	}, done: done}); sendErr != nil {
		return nil, sendErr
	}
	<-done
	return exp, err
}

// ImportHome materializes a migrated home on this hub from an export,
// wholesale-replacing any resident copy — a retried transfer (or one that
// raced a duplicate delivery) converges on exactly the exported state, never
// a hybrid. The durable records are replayed and persisted to this hub's own
// store; the volatile state is restored with its original timestamps; the
// whole import runs with the engine in quiet mode, so rules whose conditions
// already hold are adopted as current device owners without firing again
// (they fired on the source — the imported log proves it).
func (h *Hub) ImportHome(exp *HomeExport) error {
	if exp == nil || exp.Home == "" {
		return errors.New("fleet: import without home")
	}
	var err error
	done := make(chan struct{})
	if sendErr := h.send(exp.Home, task{home: exp.Home, shardFn: func(s *shard) {
		err = s.importHome(exp)
	}, done: done}); sendErr != nil {
		return sendErr
	}
	<-done
	return err
}

func (s *shard) importHome(exp *HomeExport) error {
	h := s.hub
	// Drop any resident copy: a stale pre-migration home, or the partial
	// result of an earlier interrupted import.
	if _, ok := s.homes[exp.Home]; ok {
		delete(s.homes, exp.Home)
		delete(s.pending, exp.Home)
		h.metrics.Homes.Add(-1)
	}
	// Tombstone before the records: if this process dies mid-import, replay
	// sees <reset, partial records> and the next transfer retry prepends a
	// fresh reset — the store can never rehydrate a duplicate or a hybrid.
	if err := h.append(Record{Home: exp.Home, Kind: RecordHomeReset}); err != nil {
		return err
	}
	hm := s.home(exp.Home)
	hm.engine.SetQuiet(true)
	defer hm.engine.SetQuiet(false)
	for _, rec := range exp.Records {
		rec.Seq = 0 // transfer-stream numbering; this hub's store renumbers
		if err := hm.applyRecord(rec); err != nil {
			s.dropHome(exp.Home)
			return err
		}
		if err := h.append(rec); err != nil {
			s.dropHome(exp.Home)
			return err
		}
	}
	if exp.State != nil {
		hm.engine.ImportState(exp.State)
	}
	return nil
}

// dropHome removes a home mid-import and tombstones its partial records.
func (s *shard) dropHome(id string) {
	if _, ok := s.homes[id]; ok {
		delete(s.homes, id)
		delete(s.pending, id)
		s.hub.metrics.Homes.Add(-1)
	}
	// Best effort: if this append fails too, the partial records stay ahead
	// of no reset, but the next import attempt writes one before its own
	// records, restoring the invariant.
	_ = s.hub.append(Record{Home: id, Kind: RecordHomeReset})
}

// ReleaseHome forgets a home after the migration target acked the transfer:
// a tombstone is appended (a restarted source must not resurrect a home it
// handed away), the home leaves memory, and the seal lifts. Releasing a home
// that is already gone is a no-op, so coordinator retries are safe.
func (h *Hub) ReleaseHome(home string) error {
	var err error
	done := make(chan struct{})
	if sendErr := h.send(home, task{home: home, shardFn: func(s *shard) {
		if _, ok := s.homes[home]; !ok {
			return
		}
		if err = h.append(Record{Home: home, Kind: RecordHomeReset}); err != nil {
			return
		}
		delete(s.homes, home)
		delete(s.pending, home)
		h.metrics.Homes.Add(-1)
	}, done: done}); sendErr != nil {
		return sendErr
	}
	<-done
	if err == nil {
		h.UnsealHome(home)
	}
	return err
}
