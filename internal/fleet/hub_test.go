package fleet

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
)

var testEpoch = time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)

func testClock() func() time.Time { return func() time.Time { return testEpoch } }

// hotRule is the paper's example rule 1, minus the user-defined word.
const hotRule = "If temperature is higher than 28 degrees, turn on the air conditioner " +
	"with 25 degrees of temperature setting."

func newTestHub(t *testing.T, opts ...HubOption) *Hub {
	t.Helper()
	h, err := NewHub(append([]HubOption{WithClock(testClock())}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func seedHome(t *testing.T, h *Hub, home string) {
	t.Helper()
	if err := h.RegisterUser(home, "tom"); err != nil {
		t.Fatalf("%s: register: %v", home, err)
	}
	if _, err := h.Submit(home, hotRule, "tom"); err != nil {
		t.Fatalf("%s: submit: %v", home, err)
	}
}

func postTemp(t *testing.T, h *Hub, home, value string) {
	t.Helper()
	if err := h.PostEvent(home, device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": value}); err != nil {
		t.Fatal(err)
	}
}

func TestHubSubmitEventFire(t *testing.T) {
	h := newTestHub(t, WithShards(2))
	seedHome(t, h, "home-a")
	postTemp(t, h, "home-a", "31")
	if err := h.Quiesce(); err != nil {
		t.Fatal(err)
	}
	log, err := h.Log("home-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("log = %d entries, want 1", len(log))
	}
	if got := log[0].Rule.Device.Key(); got != "air conditioner" {
		t.Fatalf("fired device = %q", got)
	}
	owners, err := h.Owners("home-a")
	if err != nil {
		t.Fatal(err)
	}
	if owners["air conditioner"] != log[0].Rule.ID {
		t.Fatalf("owners = %v", owners)
	}
}

// TestHubHomesAreIsolated checks that homes evolve independently: same user
// names, same rule ids, separate state — across shards.
func TestHubHomesAreIsolated(t *testing.T) {
	h := newTestHub(t, WithShards(4))
	homes := []string{"h0", "h1", "h2", "h3", "h4", "h5"}
	for _, home := range homes {
		seedHome(t, h, home)
	}
	// Heat only the even homes.
	for i, home := range homes {
		if i%2 == 0 {
			postTemp(t, h, home, "31")
		}
	}
	if err := h.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for i, home := range homes {
		log, err := h.Log(home)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if i%2 == 0 {
			want = 1
		}
		if len(log) != want {
			t.Fatalf("%s: log = %d entries, want %d", home, len(log), want)
		}
		rules, err := h.Rules(home)
		if err != nil {
			t.Fatal(err)
		}
		if len(rules) != 1 || rules[0].ID != "tom-1" {
			t.Fatalf("%s: rules = %v", home, rules)
		}
	}
	ids, err := h.Homes()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(homes) {
		t.Fatalf("Homes() = %v", ids)
	}
}

// TestHubCoalescesBurst pins the coalescing semantics of the ISSUE: a burst
// of K events for one home yields exactly ONE evaluation pass, and the final
// state — owners, context, and the in-effect action of every still-owned
// device — matches K sequential passes (oracle equivalence). Intermediate
// transitions the burst never observes (the whole point of coalescing) are
// excluded from the comparison: a device whose rule lapsed by burst end has
// no in-effect action either way.
func TestHubCoalescesBurst(t *testing.T) {
	const k = 32
	for _, tc := range []struct {
		name  string
		last  string // the burst's final temperature
		fires int    // dispatches the coalesced pass should produce
	}{
		{"ends-ready", "31", 1},
		{"ends-lapsed", "20", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			burstHub := newTestHub(t, WithShards(1))
			oracleHub := newTestHub(t, WithShards(1))
			const home = "casa"
			seedHome(t, burstHub, home)
			seedHome(t, oracleHub, home)

			// Values that cross the threshold in both directions mid-burst.
			values := make([]string, k)
			for i := range values {
				switch {
				case i%3 == 0:
					values[i] = "31"
				case i%3 == 1:
					values[i] = "20"
				default:
					values[i] = fmt.Sprintf("%d", 29+i%2)
				}
			}
			values[k-1] = tc.last

			// Gate the burst hub's shard so the whole burst lands in one
			// mailbox drain, then count the passes the flood costs.
			before, err := burstHub.Passes(home)
			if err != nil {
				t.Fatal(err)
			}
			gate := make(chan struct{})
			s := burstHub.shardFor(home)
			if !s.mb.put(task{shardFn: func(*shard) { <-gate }}) {
				t.Fatal("mailbox closed")
			}
			for _, v := range values {
				postTemp(t, burstHub, home, v)
			}
			close(gate)
			if err := burstHub.Quiesce(); err != nil {
				t.Fatal(err)
			}
			after, err := burstHub.Passes(home)
			if err != nil {
				t.Fatal(err)
			}
			if got := after - before; got != 1 {
				t.Fatalf("burst of %d events cost %d evaluation passes, want exactly 1", k, got)
			}
			bLog, _ := burstHub.Log(home)
			if len(bLog) != tc.fires {
				t.Fatalf("coalesced pass fired %d times, want %d", len(bLog), tc.fires)
			}

			// Oracle: the same events, each fully evaluated before the next.
			for _, v := range values {
				if err := oracleHub.PostEventSync(home, device.TypeThermometer, "thermometer",
					"living room", map[string]string{"temperature": v}); err != nil {
					t.Fatal(err)
				}
			}

			burstOwners, err := burstHub.Owners(home)
			if err != nil {
				t.Fatal(err)
			}
			oracleOwners, err := oracleHub.Owners(home)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(burstOwners, oracleOwners) {
				t.Fatalf("final owners diverge: burst=%v oracle=%v", burstOwners, oracleOwners)
			}
			// For every still-owned device, the action in effect must agree.
			lastAction := func(log []engine.Fired, devKey string) string {
				for i := len(log) - 1; i >= 0; i-- {
					if log[i].Rule.Device.Key() == devKey {
						return log[i].Rule.Action.String()
					}
				}
				return ""
			}
			oLog, _ := oracleHub.Log(home)
			for devKey := range oracleOwners {
				if got, want := lastAction(bLog, devKey), lastAction(oLog, devKey); got != want {
					t.Fatalf("%s: in-effect action diverges: burst=%q oracle=%q", devKey, got, want)
				}
			}
			bCtx, _ := burstHub.Context(home)
			oCtx, _ := oracleHub.Context(home)
			if !reflect.DeepEqual(bCtx.Numbers, oCtx.Numbers) {
				t.Fatalf("final contexts diverge: burst=%v oracle=%v", bCtx.Numbers, oCtx.Numbers)
			}
		})
	}
}

// TestHubOpsSeePriorEvents checks the ordering contract: an operation
// enqueued after an event observes that event fully evaluated.
func TestHubOpsSeePriorEvents(t *testing.T) {
	h := newTestHub(t, WithShards(1))
	seedHome(t, h, "home")
	postTemp(t, h, "home", "31")
	// No Quiesce: Log itself must flush the backlog first.
	log, err := h.Log("home")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 {
		t.Fatalf("log = %d entries, want 1 (op ran before prior event evaluated)", len(log))
	}
}

// TestHubConcurrentIngestion floods many homes from many goroutines while
// operations interleave — run under -race in CI.
func TestHubConcurrentIngestion(t *testing.T) {
	const homes, producers, perProducer = 16, 8, 50
	h := newTestHub(t, WithShards(4), WithDispatchWorkers(4),
		WithDispatcher(func(string, core.DeviceRef, core.Action) error { return nil }))
	for i := 0; i < homes; i++ {
		seedHome(t, h, fmt.Sprintf("home-%d", i))
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				home := fmt.Sprintf("home-%d", (p+i)%homes)
				v := "31"
				if i%2 == 1 {
					v = "20"
				}
				if err := h.PostEvent(home, device.TypeThermometer, "thermometer",
					"living room", map[string]string{"temperature": v}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := h.Quiesce(); err != nil {
		t.Fatal(err)
	}
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != producers*perProducer {
		t.Fatalf("stats events = %d, want %d", st.Events, producers*perProducer)
	}
	if st.Homes != homes || st.Rules != homes {
		t.Fatalf("stats = %+v", st)
	}
	if st.Queued != 0 {
		t.Fatalf("queued = %d after Quiesce", st.Queued)
	}
}

func TestHubClosedErrors(t *testing.T) {
	h := newTestHub(t, WithShards(1))
	seedHome(t, h, "home")
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.PostEvent("home", device.TypeThermometer, "t", "", map[string]string{"temperature": "1"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PostEvent after close = %v, want ErrClosed", err)
	}
	if _, err := h.Submit("home", hotRule, "tom"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close = %v, want ErrClosed", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("second close = %v", err)
	}
}

func TestHubUnknownUserAndBadRule(t *testing.T) {
	h := newTestHub(t, WithShards(1))
	if _, err := h.Submit("home", hotRule, "nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("submit by stranger = %v, want ErrUnknownUser", err)
	}
	seedHome(t, h, "home")
	if _, err := h.Submit("home",
		"If temperature is higher than 28 degrees and temperature is lower than 20 degrees, "+
			"turn on the air conditioner.", "tom"); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("inconsistent rule = %v, want ErrInconsistent", err)
	}
}

func TestHubAuthorizer(t *testing.T) {
	h := newTestHub(t, WithShards(1), WithAuthorizer(
		func(home, owner string, dev core.DeviceRef, verb string) bool {
			return owner != "kid" || dev.Name != "air conditioner"
		}))
	if err := h.RegisterUser("home", "kid"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Submit("home", hotRule, "kid"); !errors.Is(err, ErrForbidden) {
		t.Fatalf("forbidden rule = %v, want ErrForbidden", err)
	}
	if _, err := h.Submit("home", "Turn on the light at the hall.", "kid"); err != nil {
		t.Fatalf("allowed rule = %v", err)
	}
}
