package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a hand-advanced time source whose sleep only records.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// okAppendHandler acks every append, recording the records it saw.
func okAppendHandler(mu *sync.Mutex, got *[]Record) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var rec Record
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		*got = append(*got, rec)
		mu.Unlock()
		json.NewEncoder(w).Encode(AppendResponse{Applied: true, Seq: rec.Seq})
	}
}

func testRemote(url string, clock *fakeClock, opts ...RemoteOption) *RemoteStore {
	base := []RemoteOption{
		RemoteWithSeed(1),
		RemoteWithTimeout(2 * time.Second),
		RemoteWithBackoff(time.Millisecond, 8*time.Millisecond),
		RemoteWithClock(clock.Now, clock.Sleep),
	}
	return OpenRemoteStore(url, append(base, opts...)...)
}

func TestRemoteAppendAssignsMonotonicSeqPerHome(t *testing.T) {
	var mu sync.Mutex
	var got []Record
	ts := httptest.NewServer(okAppendHandler(&mu, &got))
	defer ts.Close()
	s := testRemote(ts.URL, newFakeClock())
	for _, home := range []string{"a", "a", "b", "a"} {
		if err := s.Append(Record{Home: home, Kind: RecordRule, ID: "r"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{1, 2, 1, 3}
	for i, rec := range got {
		if rec.Seq != want[i] {
			t.Fatalf("append %d (home %s) seq = %d, want %d", i, rec.Home, rec.Seq, want[i])
		}
	}
}

func TestRemoteAppendRetriesTransientFailures(t *testing.T) {
	var calls atomic.Uint64
	var mu sync.Mutex
	var got []Record
	ok := okAppendHandler(&mu, &got)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		ok(w, r)
	}))
	defer ts.Close()
	clock := newFakeClock()
	s := testRemote(ts.URL, clock, RemoteWithRetries(4))
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r"}); err != nil {
		t.Fatalf("append through transient 500s: %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("requests = %d, want 3 (two 500s then success)", n)
	}
	if len(clock.sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", clock.sleeps)
	}
	// Capped exponential with jitter in [0.5, 1.0): sleep i sits inside
	// (0, base<<i].
	for i, d := range clock.sleeps {
		max := time.Millisecond << uint(i)
		if d <= 0 || d > max {
			t.Fatalf("sleep %d = %v, want in (0, %v]", i, d, max)
		}
	}
}

func TestRemoteBreakerOpensFailsFastAndRecovers(t *testing.T) {
	var calls atomic.Uint64
	var failing atomic.Bool
	failing.Store(true)
	var mu sync.Mutex
	var got []Record
	ok := okAppendHandler(&mu, &got)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		ok(w, r)
	}))
	defer ts.Close()
	clock := newFakeClock()
	s := testRemote(ts.URL, clock,
		RemoteWithRetries(2), RemoteWithBreaker(2, 10*time.Second))

	// Failure 1: below the threshold — degraded error, breaker still closed.
	err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r1"})
	if !errors.Is(err, ErrStoreDegraded) {
		t.Fatalf("append = %v, want ErrStoreDegraded", err)
	}
	if h := s.StoreHealth(); h.Degraded || h.ConsecutiveFails != 1 {
		t.Fatalf("health after one failure = %+v", h)
	}

	// Failure 2: trips the breaker.
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r2"}); !errors.Is(err, ErrStoreDegraded) {
		t.Fatalf("append = %v, want ErrStoreDegraded", err)
	}
	if h := s.StoreHealth(); !h.Degraded || h.RetryAfterSeconds != 10 {
		t.Fatalf("health after trip = %+v, want degraded with 10s retry-after", h)
	}

	// Open breaker: writes fail fast without touching the network.
	before := calls.Load()
	err = s.Append(Record{Home: "a", Kind: RecordRule, ID: "r3"})
	var de *DegradedError
	if !errors.As(err, &de) || de.RetryAfter <= 0 {
		t.Fatalf("fail-fast append = %v, want DegradedError with RetryAfter", err)
	}
	if calls.Load() != before {
		t.Fatal("open breaker still sent a request")
	}

	// Cool-down elapses, server healthy again: the half-open trial closes it.
	failing.Store(false)
	clock.Advance(11 * time.Second)
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r4"}); err != nil {
		t.Fatalf("half-open trial append = %v", err)
	}
	if h := s.StoreHealth(); h.Degraded || h.ConsecutiveFails != 0 {
		t.Fatalf("health after recovery = %+v", h)
	}
}

func TestRemotePermanent4xxDoesNotRetry(t *testing.T) {
	var calls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad record", http.StatusBadRequest)
	}))
	defer ts.Close()
	s := testRemote(ts.URL, newFakeClock(), RemoteWithRetries(5))
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r"}); err == nil {
		t.Fatal("append against a 400 endpoint succeeded")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("requests = %d, want 1 (4xx is permanent)", n)
	}
}

// replayHandler streams lines verbatim.
func replayHandler(lines ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
}

func TestRemoteReplayRejectsTruncatedStream(t *testing.T) {
	// No replay-end trailer: the stream must be treated as incomplete.
	ts := httptest.NewServer(replayHandler(
		`{"home":"a","kind":"rule","id":"r1","seq":1}`,
	))
	defer ts.Close()
	s := testRemote(ts.URL, newFakeClock(), RemoteWithRetries(2))
	err := s.Replay(func(Record) error { return nil })
	if err == nil {
		t.Fatal("replay of a truncated stream succeeded")
	}
}

func TestRemoteReplayRejectsWrongLineCount(t *testing.T) {
	ts := httptest.NewServer(replayHandler(
		`{"home":"a","kind":"rule","id":"r1","seq":1}`,
		`{"kind":"replay-end","epoch":5}`,
	))
	defer ts.Close()
	s := testRemote(ts.URL, newFakeClock(), RemoteWithRetries(2))
	if err := s.Replay(func(Record) error { return nil }); err == nil {
		t.Fatal("replay with a wrong trailer count succeeded")
	}
}

func TestRemoteReplayDeliversRecordsAndResumesSeq(t *testing.T) {
	var mu sync.Mutex
	var appended []Record
	ok := okAppendHandler(&mu, &appended)
	mux := http.NewServeMux()
	mux.HandleFunc(remoteReplayPath, replayHandler(
		`{"home":"a","kind":"rule","id":"r1","seq":4}`,
		`{"home":"b","kind":"rule","id":"r2","seq":1}`,
		`{"home":"a","kind":"seq-mark","seq":9}`,
		`{"kind":"replay-end","epoch":3}`,
	))
	mux.HandleFunc(remoteAppendPath, ok)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	s := testRemote(ts.URL, newFakeClock())
	var got []Record
	if err := s.Replay(func(rec Record) error { got = append(got, rec); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Home: "a", Kind: RecordRule, ID: "r1", Seq: 4},
		{Home: "b", Kind: RecordRule, ID: "r2", Seq: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay delivered %+v, want %+v (protocol records must be consumed)", got, want)
	}

	// Seq counters resume past the seq-mark (home a: 9) and the record seqs
	// (home b: 1), so fresh appends cannot collide with applied history.
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r3"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Home: "b", Kind: RecordRule, ID: "r4"}); err != nil {
		t.Fatal(err)
	}
	if appended[0].Seq != 10 || appended[1].Seq != 2 {
		t.Fatalf("post-replay seqs = %d, %d; want 10, 2", appended[0].Seq, appended[1].Seq)
	}
}

func TestRemoteWriteSnapshotRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var body []Record
	mux := http.NewServeMux()
	mux.HandleFunc(remoteSnapshotPath, func(w http.ResponseWriter, r *http.Request) {
		dec := json.NewDecoder(r.Body)
		mu.Lock()
		defer mu.Unlock()
		for dec.More() {
			var rec Record
			if err := dec.Decode(&rec); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			body = append(body, rec)
		}
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	s := testRemote(ts.URL, newFakeClock())
	recs := []Record{
		{Home: "a", Kind: RecordUser, User: "tom"},
		{Home: "a", Kind: RecordRule, ID: "r1", Source: "src"},
	}
	if err := s.WriteSnapshot(recs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(body, recs) {
		t.Fatalf("snapshot body = %+v, want %+v", body, recs)
	}
}

func TestRemoteStoreMetricsWiring(t *testing.T) {
	var calls atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(AppendResponse{Applied: true, Seq: 1})
	}))
	defer ts.Close()
	clock := newFakeClock()
	s := testRemote(ts.URL, clock, RemoteWithRetries(3), RemoteWithBreaker(1, time.Minute))
	m := obs.New(1)
	s.SetStoreMetrics(&m.Store)
	if err := s.Append(Record{Home: "a", Kind: RecordRule, ID: "r"}); err != nil {
		t.Fatal(err)
	}
	st := m.StoreTotals()
	if st.AppendRetries != 1 || st.AppendNs.Count != 1 || st.Degraded {
		t.Fatalf("store totals after retried success = %+v", st)
	}
}
