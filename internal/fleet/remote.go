package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Remote record-log protocol (served by internal/logserver):
//
//	POST /log/append    one Record (Seq set)      → 200 {"applied","seq"}
//	GET  /log/replay    → JSONL: records, then one seq-mark per home, then
//	                      a replay-end record carrying the line count
//	POST /log/snapshot  JSONL records             → 204
//	GET  /healthz       → 200 {"homes","epoch","sync"}
const (
	remoteAppendPath   = "/log/append"
	remoteReplayPath   = "/log/replay"
	remoteSnapshotPath = "/log/snapshot"
	remoteHealthPath   = "/healthz"
)

// AppendResponse is the log server's answer to one append. Applied is false
// when the {home, seq} pair had already been applied — a retried or
// duplicated delivery the server deduplicated; either way the record is
// durable and the append succeeded.
type AppendResponse struct {
	Applied bool   `json:"applied"`
	Seq     uint64 `json:"seq"`
}

// StoreHealth is a store backend's health snapshot for /fleet/stats.
type StoreHealth struct {
	// Degraded is true while the circuit breaker refuses writes.
	Degraded bool `json:"degraded"`
	// ConsecutiveFails counts append/snapshot calls that exhausted their
	// retries since the last success.
	ConsecutiveFails int `json:"consecutive_fails"`
	// RetryAfterSeconds is the breaker's remaining cool-down (0 when closed).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// RemoteStore is the Store backed by a remote record-log service
// (cmd/logserver): per-append durability and multi-node access, the backend
// the distributed-fleet work migrates homes over.
//
// Every append carries a {home, seq} idempotency key — the client numbers
// each home's appends monotonically (resuming the counters from Replay), and
// the server applies each pair exactly once — so the client can retry
// failed or timed-out requests freely: a request whose response was lost is
// re-sent and deduplicated rather than double-applied. Requests run under a
// per-attempt deadline with capped exponential backoff plus jitter between
// attempts.
//
// Failure is fail-closed behind a health-gated circuit breaker: after
// RemoteWithBreaker's threshold of consecutive exhausted-retry failures, the
// breaker opens and writes fail immediately with a DegradedError (the hub
// surfaces it as 503 + Retry-After and rolls the mutation back; reads keep
// serving from memory). After the cool-down one trial write is let through:
// success closes the breaker, failure re-opens it.
//
// An append that exhausts its retries is in doubt: the record may have
// landed without its ack. The hub rolls the mutation back in memory, so a
// restart's Replay is the reconciliation point — see the Store contract in
// the package README.
type RemoteStore struct {
	base    string // http://host:port, no trailing slash
	hc      *http.Client
	timeout time.Duration // per attempt
	retries int           // attempts per call
	backoff time.Duration // first retry delay
	cap     time.Duration // backoff ceiling

	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // how long the breaker stays open

	now   func() time.Time
	sleep func(time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	seq       map[string]uint64
	fails     int
	openUntil time.Time
	degraded  bool
	closed    bool

	sm storeMetrics
}

// storeMetrics nil-safely wraps the hub's *obs.StoreMetrics block so an
// unwired store (no hub, tests) costs nothing to instrument.
type storeMetrics struct{ m *obs.StoreMetrics }

func (w storeMetrics) errorInc() {
	if w.m != nil {
		w.m.AppendErrors.Inc()
	}
}
func (w storeMetrics) retryInc() {
	if w.m != nil {
		w.m.AppendRetries.Inc()
	}
}
func (w storeMetrics) tripInc() {
	if w.m != nil {
		w.m.BreakerTrips.Inc()
	}
}
func (w storeMetrics) setDegraded(on bool) {
	if w.m != nil {
		var v int64
		if on {
			v = 1
		}
		w.m.Degraded.Set(v)
	}
}
func (w storeMetrics) observeNs(ns uint64) {
	if w.m != nil {
		w.m.AppendNs.Observe(ns)
	}
}

// RemoteOption configures OpenRemoteStore.
type RemoteOption func(*RemoteStore)

// RemoteWithTimeout sets the per-attempt request deadline.
func RemoteWithTimeout(d time.Duration) RemoteOption {
	return func(s *RemoteStore) { s.timeout = d }
}

// RemoteWithRetries sets how many attempts each call makes before giving up.
func RemoteWithRetries(n int) RemoteOption {
	return func(s *RemoteStore) { s.retries = n }
}

// RemoteWithBackoff sets the first retry delay and its exponential ceiling.
func RemoteWithBackoff(first, ceil time.Duration) RemoteOption {
	return func(s *RemoteStore) { s.backoff, s.cap = first, ceil }
}

// RemoteWithBreaker sets the circuit breaker: threshold consecutive
// exhausted-retry failures open it for cooldown. threshold <= 0 disables the
// breaker (every write runs its full retry budget).
func RemoteWithBreaker(threshold int, cooldown time.Duration) RemoteOption {
	return func(s *RemoteStore) { s.threshold, s.cooldown = threshold, cooldown }
}

// RemoteWithTransport sets the HTTP transport (fault injection, pooling).
func RemoteWithTransport(rt http.RoundTripper) RemoteOption {
	return func(s *RemoteStore) { s.hc.Transport = rt }
}

// RemoteWithSeed seeds the backoff jitter, making retry timing deterministic.
func RemoteWithSeed(seed int64) RemoteOption {
	return func(s *RemoteStore) { s.rng = rand.New(rand.NewSource(seed)) }
}

// RemoteWithClock injects the time source and sleeper (tests).
func RemoteWithClock(now func() time.Time, sleep func(time.Duration)) RemoteOption {
	return func(s *RemoteStore) { s.now, s.sleep = now, sleep }
}

// OpenRemoteStore builds a remote store client for a log server at base
// (e.g. "http://127.0.0.1:9377"). No connection is made until the first
// call; NewHub's replay is typically the first round trip.
func OpenRemoteStore(base string, opts ...RemoteOption) *RemoteStore {
	s := &RemoteStore{
		base:      strings.TrimSuffix(base, "/"),
		hc:        &http.Client{},
		timeout:   2 * time.Second,
		retries:   4,
		backoff:   50 * time.Millisecond,
		cap:       2 * time.Second,
		threshold: 3,
		cooldown:  5 * time.Second,
		now:       time.Now,
		sleep:     time.Sleep,
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		seq:       make(map[string]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Base returns the server URL the store was opened with.
func (s *RemoteStore) Base() string { return s.base }

// jitter returns d scaled by a uniform factor in [0.5, 1.0): backoff with
// jitter so a fleet of clients does not hammer a recovering server in sync.
func (s *RemoteStore) jitter(d time.Duration) time.Duration {
	s.rngMu.Lock()
	f := 0.5 + 0.5*s.rng.Float64()
	s.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// backoffAt returns the capped exponential delay before retry attempt i.
func (s *RemoteStore) backoffAt(i int) time.Duration {
	d := s.backoff << uint(i)
	if d > s.cap || d <= 0 {
		d = s.cap
	}
	return s.jitter(d)
}

// admit gates a write on the breaker. It returns a DegradedError while the
// breaker is open and inside its cool-down; once the cool-down elapses one
// trial write proceeds (half-open).
func (s *RemoteStore) admit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.degraded {
		return nil
	}
	if wait := s.openUntil.Sub(s.now()); wait > 0 {
		s.sm.errorInc()
		return &DegradedError{RetryAfter: wait}
	}
	return nil // half-open: let one trial through
}

// success records a successful write: the breaker closes.
func (s *RemoteStore) success() {
	s.mu.Lock()
	was := s.degraded
	s.fails, s.degraded = 0, false
	s.mu.Unlock()
	if was {
		s.sm.setDegraded(false)
	}
}

// failure records a write that exhausted its retries and returns the
// degraded error to surface: the breaker opens at the threshold (or re-opens
// on a failed half-open trial).
func (s *RemoteStore) failure(err error) error {
	s.mu.Lock()
	s.fails++
	retryAfter := s.backoff
	if s.threshold > 0 && (s.fails >= s.threshold || s.degraded) {
		tripped := !s.degraded
		s.degraded = true
		s.openUntil = s.now().Add(s.cooldown)
		retryAfter = s.cooldown
		s.mu.Unlock()
		if tripped {
			s.sm.tripInc()
		}
		s.sm.setDegraded(true)
		s.sm.errorInc()
		return &DegradedError{RetryAfter: retryAfter, Err: err}
	}
	s.mu.Unlock()
	s.sm.errorInc()
	return &DegradedError{RetryAfter: retryAfter, Err: err}
}

// errPermanent marks a response that must not be retried (a 4xx: the request
// itself is wrong, or the server rejected it deterministically).
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }

// attempt runs one HTTP round trip under the per-attempt deadline and
// returns the response body for a wantStatus response. Other statuses map to
// retryable or permanent errors.
func (s *RemoteStore) attempt(method, path string, body []byte, wantStatus int) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.base+path, rd)
	if err != nil {
		return nil, errPermanent{fmt.Errorf("fleet: remote store: %w", err)}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: remote store: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: remote store: read %s: %w", path, err)
	}
	if resp.StatusCode == wantStatus {
		return data, nil
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	herr := fmt.Errorf("fleet: remote store: %s %s: %s (%s)", method, path, resp.Status, msg)
	if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
		resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
		return nil, errPermanent{herr}
	}
	return nil, herr
}

// call runs attempt under the retry loop: capped exponential backoff with
// jitter between attempts, permanent errors returned immediately.
func (s *RemoteStore) call(method, path string, body []byte, wantStatus int) ([]byte, error) {
	var lastErr error
	for i := 0; i < s.retries; i++ {
		if i > 0 {
			s.sm.retryInc()
			s.sleep(s.backoffAt(i - 1))
		}
		data, err := s.attempt(method, path, body, wantStatus)
		if err == nil {
			return data, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		lastErr = err
	}
	return nil, lastErr
}

// SetStoreMetrics wires the client's counters and histograms onto a hub's
// metrics registry; NewHub calls it when the store is attached.
func (s *RemoteStore) SetStoreMetrics(m *obs.StoreMetrics) {
	s.sm = storeMetrics{m: m}
}

// Append implements Store: one POST per record, idempotent under retries via
// the {home, seq} key, degraded-gated by the breaker.
func (s *RemoteStore) Append(rec Record) error {
	if err := s.admit(); err != nil {
		return err
	}
	s.mu.Lock()
	s.seq[rec.Home]++
	rec.Seq = s.seq[rec.Home]
	s.mu.Unlock()
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: remote store: %w", err)
	}
	start := s.now()
	data, err := s.call(http.MethodPost, remoteAppendPath, body, http.StatusOK)
	if err != nil {
		return s.failure(err)
	}
	var ar AppendResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		return s.failure(fmt.Errorf("fleet: remote store: append response: %w", err))
	}
	s.success()
	s.sm.observeNs(uint64(s.now().Sub(start)))
	return nil
}

// Replay implements Store. The whole stream is fetched and validated first —
// the server terminates it with a replay-end record carrying the line count,
// so a stream cut short by a dying server is retried instead of half
// delivered — then handed to fn in order. Seq-marks in the stream resume the
// per-home idempotency counters (they are consumed here, never passed on).
func (s *RemoteStore) Replay(fn func(Record) error) error {
	recs, err := s.fetchReplay()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

func (s *RemoteStore) fetchReplay() ([]Record, error) {
	var lastErr error
	for i := 0; i < s.retries; i++ {
		if i > 0 {
			s.sm.retryInc()
			s.sleep(s.backoffAt(i - 1))
		}
		recs, err := s.attemptReplay()
		if err == nil {
			return recs, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: remote store: replay: %w", lastErr)
}

func (s *RemoteStore) attemptReplay() ([]Record, error) {
	// Replay streams the whole log: give it a generous multiple of the
	// per-attempt deadline instead of the append-sized one.
	ctx, cancel := context.WithTimeout(context.Background(), 10*s.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+remoteReplayPath, nil)
	if err != nil {
		return nil, errPermanent{err}
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("replay: %s", resp.Status)
	}
	var recs []Record
	var lines uint64
	complete := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("replay: bad line: %w", err)
		}
		switch rec.Kind {
		case RecordReplayEnd:
			if rec.Epoch != lines {
				return nil, fmt.Errorf("replay: stream claims %d lines, saw %d", rec.Epoch, lines)
			}
			complete = true
		case RecordSeqMark:
			lines++
			s.mu.Lock()
			if rec.Seq > s.seq[rec.Home] {
				s.seq[rec.Home] = rec.Seq
			}
			s.mu.Unlock()
		default:
			lines++
			s.mu.Lock()
			if rec.Seq > s.seq[rec.Home] {
				s.seq[rec.Home] = rec.Seq
			}
			s.mu.Unlock()
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if !complete {
		return nil, errors.New("replay: stream ended without replay-end record")
	}
	return recs, nil
}

// WriteSnapshot implements Store: the records stream to the server as JSON
// lines and atomically replace its state. Retried snapshots are naturally
// idempotent (same records, same result).
func (s *RemoteStore) WriteSnapshot(recs []Record) error {
	if err := s.admit(); err != nil {
		return err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("fleet: remote store: snapshot: %w", err)
		}
	}
	if _, err := s.call(http.MethodPost, remoteSnapshotPath, buf.Bytes(), http.StatusNoContent); err != nil {
		return s.failure(err)
	}
	s.success()
	return nil
}

// Close implements Store. The server is a shared service; closing the client
// only stops this hub's use of it.
func (s *RemoteStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// StoreHealth reports the breaker state for /fleet/stats.
func (s *RemoteStore) StoreHealth() StoreHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := StoreHealth{Degraded: s.degraded, ConsecutiveFails: s.fails}
	if s.degraded {
		if wait := s.openUntil.Sub(s.now()); wait > 0 {
			h.RetryAfterSeconds = int((wait + time.Second - 1) / time.Second)
		}
	}
	return h
}
