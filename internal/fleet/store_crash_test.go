package fleet

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
)

var errInjected = errors.New("injected fault")

// crashRecords builds n distinguishable records for one home.
func crashRecords(home string, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Home: home, Kind: RecordRule,
			ID: fmt.Sprintf("%s-%d", home, i+1), Owner: "tom", Source: fmt.Sprintf("src-%d", i+1)}
	}
	return recs
}

func replayAll(t *testing.T, s Store) []Record {
	t.Helper()
	var out []Record
	if err := s.Replay(func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// TestAppendTornWriteTruncatesBack locks in the partial-write repair: a write
// that fails after emitting part of a record must truncate the WAL back to
// the pre-record offset, so later appends are not buried behind a torn line
// Replay would reject (torn tails are tolerated only at EOF).
func TestAppendTornWriteTruncatesBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := crashRecords("home", 4)
	if err := s.Append(recs[0]); err != nil {
		t.Fatal(err)
	}

	// Tear the next append: half the line reaches the file, then an error.
	s.SetFaultHooks(FaultHooks{AppendWrite: func(w io.Writer, line []byte) (int, error) {
		n, _ := w.Write(line[:len(line)/2])
		return n, errInjected
	}})
	if err := s.Append(recs[1]); !errors.Is(err, errInjected) {
		t.Fatalf("torn append error = %v, want injected fault", err)
	}
	s.SetFaultHooks(FaultHooks{})

	// Later appends must land cleanly after the torn one.
	if err := s.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	want := []Record{recs[0], recs[2], recs[3]}
	if got := replayAll(t, s); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after torn append = %+v, want %+v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// And a restart over the same directory sees the same records.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := replayAll(t, s2); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after reopen = %+v, want %+v", got, want)
	}
}

// TestAppendShortWriteTruncatesBack is the torn-write repair for a short
// write that reports no error of its own.
func TestAppendShortWriteTruncatesBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := crashRecords("home", 2)
	s.SetFaultHooks(FaultHooks{AppendWrite: func(w io.Writer, line []byte) (int, error) {
		return w.Write(line[:len(line)-3])
	}})
	if err := s.Append(recs[0]); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short append error = %v, want ErrShortWrite", err)
	}
	s.SetFaultHooks(FaultHooks{})
	if err := s.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if got, want := replayAll(t, s), []Record{recs[1]}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
}

// TestOpenTruncatesTornTail is the two-crash scenario: crash #1 leaves a torn
// final line in the WAL (killed between the partial write and its
// truncate-back), the store is reopened and appends more records, then is
// reopened again. Open must cut the torn bytes off — appending after them
// would fuse the torn line with the next record into garbage in the middle
// of the log and brick the second restart.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := crashRecords("home", 3)
	if err := s.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Crash #1: half a record reaches the WAL and the process dies before the
	// truncate-back (simulated by writing the torn bytes and dropping the
	// handle without repair).
	s.SetFaultHooks(FaultHooks{AppendWrite: func(w io.Writer, line []byte) (int, error) {
		w.Write(line[:len(line)/2])
		return 0, nil // report nothing written: no truncate-back happens
	}})
	if err := s.Append(recs[1]); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("torn append = %v, want ErrShortWrite", err)
	}
	_ = s.Close()

	// Restart: the torn tail must be gone, and a fresh append must land as a
	// clean line of its own.
	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Second restart: the log must replay completely — no torn bytes fused
	// into the middle.
	s3, err := OpenFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	want := []Record{recs[0], recs[2]}
	if got := replayAll(t, s3); !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after torn-tail restart = %+v, want %+v", got, want)
	}
}

// TestSnapshotCrashLeavesReplayableStore injects a failure at every step of
// WriteSnapshot and asserts the epoch-switch contract: after a "crash" at
// any step, a fresh FileStore over the directory replays either the complete
// old state (old snapshot + old WAL) or the complete new state (new snapshot
// + empty WAL) — never a mix, never a refusal to start.
func TestSnapshotCrashLeavesReplayableStore(t *testing.T) {
	old := crashRecords("home", 3)
	newer := crashRecords("home", 5)[3:] // disjoint ids so mixes are detectable
	steps := []SnapshotStep{StepWALCreate, StepTempWrite, StepTempSync, StepRename, StepDirSync, StepCommit}
	for _, step := range steps {
		t.Run(string(step), func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenFileStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range old {
				if err := s.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			s.SetFaultHooks(FaultHooks{Snapshot: func(at SnapshotStep) error {
				if at == step {
					return errInjected
				}
				return nil
			}})
			err = s.WriteSnapshot(newer)
			if step == StepCommit {
				// Committed before the hook fired: the snapshot must report
				// success and serve the new state.
				if err != nil {
					t.Fatalf("WriteSnapshot with post-commit fault = %v, want nil", err)
				}
			} else if !errors.Is(err, errInjected) {
				t.Fatalf("WriteSnapshot = %v, want injected fault", err)
			}
			_ = s.Close() // crash: the handle state after the fault is undefined

			s2, err := OpenFileStore(dir)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", step, err)
			}
			defer s2.Close()
			got := replayAll(t, s2)
			oldOK := reflect.DeepEqual(got, old)
			newOK := reflect.DeepEqual(got, newer)
			if !oldOK && !newOK {
				t.Fatalf("replay after crash at %s = %+v, want old or new state", step, got)
			}
			if step == StepCommit && !newOK {
				t.Fatalf("crash after commit point must serve the new state, got old")
			}
			// The store must remain fully usable: append, snapshot, replay.
			extra := Record{Home: "home", Kind: RecordRule, ID: "extra", Owner: "tom", Source: "extra"}
			if err := s2.Append(extra); err != nil {
				t.Fatal(err)
			}
			if got := replayAll(t, s2); !reflect.DeepEqual(got[len(got)-1], extra) {
				t.Fatalf("append after recovery not replayed: %+v", got)
			}
			if err := s2.WriteSnapshot(append(append([]Record(nil), newer...), extra)); err != nil {
				t.Fatalf("snapshot after recovery: %v", err)
			}
		})
	}
}

// TestFileStoreWithSyncGroupCommit exercises the durable-append path under
// concurrency: every record appended through the group-commit fsync must be
// acknowledged, survive Close, and replay exactly once after reopen.
func TestFileStoreWithSyncGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Home: fmt.Sprintf("home-%d", w), Kind: RecordRule,
					ID: fmt.Sprintf("w%d-%d", w, i), Owner: "tom", Source: "s"}
				if err := s.Append(rec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(dir, WithSync())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	seen := map[string]int{}
	for _, rec := range replayAll(t, s2) {
		seen[rec.Home+"/"+rec.ID]++
	}
	if len(seen) != writers*per {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*per)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("record %s replayed %d times", key, n)
		}
	}
}
