package fleet

import (
	"errors"
	"fmt"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/vocab"
)

// Conflict pairs a new rule with an existing rule it can clash with.
type Conflict = conflict.Conflict

// Home is one home's complete server state: lexicon, compiler, rule
// database, priority table, conflict checker and execution engine — the five
// modules of the paper's Fig. 3, minus the UPnP communication interface,
// which stays with the transport that feeds the hub. A Home is owned by
// exactly one shard; all methods run on that shard's goroutine (or during
// replay, before the shard starts), so they need no locking of their own.
type Home struct {
	id         string
	lex        *vocab.Lexicon
	compiler   *core.Compiler
	db         *registry.DB
	priorities *conflict.Table
	checker    conflict.Checker
	engine     *engine.Engine

	users     []string
	favorites map[string][]string
	// words tracks the definitions THIS home made, in definition order. The
	// lexicon cannot be consulted for this: with a shared LexiconFactory its
	// entries span every home, and snapshotting them per home would duplicate
	// (and then fail to replay) other homes' words.
	words     []wordDef
	authorize Authorizer
	ruleSeq   uint64
}

// wordDef is one user-defined word registered by this home.
type wordDef struct {
	kind   vocab.Kind
	name   string
	source string
	owner  string
}

// eventMsg is one ingested device event in the string/map shape used by the
// stock handler and API surface. Wire-decoded events skip this struct
// entirely: they ride the task's inline fast field (a pooled *ingest.Event)
// so the hot post path performs no per-event allocation.
type eventMsg struct {
	deviceType   string
	friendlyName string
	location     string
	vars         map[string]string
}

func newHome(id string, c *config, batch engine.BatchDispatcher, sm *obs.ShardMetrics) *Home {
	lex := c.lexicon(id)
	h := &Home{
		id:         id,
		lex:        lex,
		compiler:   core.NewCompiler(lex),
		db:         registry.New(),
		priorities: conflict.NewTable(),
		checker:    conflict.Checker{UseIntervalFastPath: c.intervalFeas},
		favorites:  make(map[string][]string),
		authorize:  c.authorize,
	}
	engineOpts := []engine.Option{
		engine.WithEventTTL(c.eventTTL),
		engine.WithBatchDispatcher(batch),
	}
	if sm != nil {
		engineOpts = append(engineOpts, engine.WithMetrics(&sm.Engine))
	}
	if c.traceCap > 0 {
		engineOpts = append(engineOpts, engine.WithTrace(c.traceCap))
	}
	if c.logLimit > 0 {
		engineOpts = append(engineOpts, engine.WithLogLimit(c.logLimit))
	}
	if c.fullScan {
		engineOpts = append(engineOpts, engine.WithFullScan())
	}
	if c.stringKeys {
		engineOpts = append(engineOpts, engine.WithStringKeys())
	}
	if c.onFire != nil {
		fn := c.onFire
		engineOpts = append(engineOpts, engine.WithOnFire(func(f engine.Fired) { fn(id, f) }))
	}
	h.engine = engine.New(h.db, h.priorities, c.now, nil, engineOpts...)
	return h
}

// ID returns the home's identifier.
func (h *Home) ID() string { return h.id }

// Lexicon returns the home's lexicon (concurrency-safe on its own).
func (h *Home) Lexicon() *vocab.Lexicon { return h.lex }

// RegisterUser adds a home user with optional favourite keywords.
func (h *Home) RegisterUser(name string, favorites ...string) error {
	name = vocab.Normalize(name)
	if name == "" {
		return errors.New("fleet: empty user name")
	}
	if h.isUser(name) {
		return fmt.Errorf("%w: %q (person)", vocab.ErrDuplicate, name)
	}
	// With a shared lexicon (WithLexiconFactory) another home may have added
	// the person already; per-home duplicates are caught above.
	if err := h.lex.Add(vocab.Entry{Phrase: name, Kind: vocab.KindPerson}); err != nil && !errors.Is(err, vocab.ErrDuplicate) {
		return err
	}
	h.users = append(h.users, name)
	h.engine.SetUsers(append([]string(nil), h.users...))
	if len(favorites) > 0 {
		h.SetFavorites(name, favorites)
	}
	return nil
}

// Users returns the registered users.
func (h *Home) Users() []string { return append([]string(nil), h.users...) }

func (h *Home) isUser(name string) bool {
	for _, u := range h.users {
		if u == name {
			return true
		}
	}
	return false
}

// SetFavorites registers a user's favourite keywords.
func (h *Home) SetFavorites(user string, keywords []string) {
	user = vocab.Normalize(user)
	h.favorites[user] = append([]string(nil), keywords...)
	h.engine.SetFavorites(user, keywords)
}

// Submit parses and registers one CADEL command for the owner: a rule
// definition, a condition-word definition or a configuration-word
// definition. Rule submissions run the consistency check (inconsistent rules
// are rejected with ErrInconsistent) and the conflict check (conflicting
// rules are registered and reported so the user can set a priority order).
func (h *Home) Submit(source, owner string) (*Result, error) {
	owner = vocab.Normalize(owner)
	if !h.isUser(owner) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, owner)
	}
	cmd, err := lang.Parse(source, h.lex)
	if err != nil {
		return nil, err
	}
	switch c := cmd.(type) {
	case *lang.CondDef:
		exprSource := c.Expr.String()
		// Validate the definition compiles before registering the word.
		if _, err := h.compiler.CompileCondExpr(c.Expr, owner); err != nil {
			return nil, err
		}
		if err := h.lex.DefineCondWord(c.Name, exprSource, owner); err != nil {
			return nil, err
		}
		h.words = append(h.words, wordDef{vocab.KindCondWord, vocab.Normalize(c.Name), exprSource, owner})
		return &Result{
			DefinedWord: vocab.Normalize(c.Name),
			WordKind:    vocab.KindCondWord,
			WordSource:  exprSource,
		}, nil
	case *lang.ConfDef:
		parts := make([]string, len(c.Confs))
		for i, item := range c.Confs {
			parts[i] = item.String()
		}
		confSource := joinAnd(parts)
		if err := h.lex.DefineConfWord(c.Name, confSource, owner); err != nil {
			return nil, err
		}
		h.words = append(h.words, wordDef{vocab.KindConfWord, vocab.Normalize(c.Name), confSource, owner})
		return &Result{
			DefinedWord: vocab.Normalize(c.Name),
			WordKind:    vocab.KindConfWord,
			WordSource:  confSource,
		}, nil
	case *lang.RuleDef:
		id := h.nextRuleID(owner)
		rule, err := h.compiler.CompileRule(c, id, owner)
		if err != nil {
			return nil, err
		}
		if h.authorize != nil && !h.authorize(h.id, owner, rule.Device, rule.Action.Verb) {
			return nil, fmt.Errorf("%w: %s on %s by %s", ErrForbidden, rule.Action.Verb, rule.Device, owner)
		}
		ok, err := h.checker.Consistent(rule)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrInconsistent, rule.Cond)
		}
		candidates := h.db.SameDevice(rule.Device)
		conflicts, err := h.checker.FindConflicts(rule, candidates)
		if err != nil {
			return nil, err
		}
		if err := h.db.Add(rule); err != nil {
			return nil, err
		}
		h.engine.Tick()
		return &Result{Rule: rule, Conflicts: conflicts}, nil
	default:
		return nil, fmt.Errorf("fleet: unsupported command %T", cmd)
	}
}

// nextRuleID generates an unused "<owner>-<n>" rule id. Replayed rules keep
// their stored ids, so the sequence probes past collisions.
func (h *Home) nextRuleID(owner string) string {
	for {
		h.ruleSeq++
		id := fmt.Sprintf("%s-%d", owner, h.ruleSeq)
		if _, exists := h.db.Get(id); !exists {
			return id
		}
	}
}

func joinAnd(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " and "
		}
		out += p
	}
	return out
}

// compileSource recompiles one stored rule source against the home's lexicon.
func (h *Home) compileSource(source, id, owner string) (*core.Rule, error) {
	cmd, err := lang.Parse(source, h.lex)
	if err != nil {
		return nil, err
	}
	def, ok := cmd.(*lang.RuleDef)
	if !ok {
		return nil, fmt.Errorf("fleet: %q is not a rule", source)
	}
	return h.compiler.CompileRule(def, id, owner)
}

// restoreRule re-registers a persisted rule under its original id, skipping
// the consistency and conflict checks that ran at original submission.
func (h *Home) restoreRule(id, owner, source string) error {
	rule, err := h.compileSource(source, id, owner)
	if err != nil {
		return err
	}
	if err := h.db.Add(rule); err != nil {
		return err
	}
	h.engine.Tick()
	return nil
}

// RemoveRule deletes a rule by id.
func (h *Home) RemoveRule(id string) error { return h.db.Remove(id) }

// Rules returns all registered rules in registration order.
func (h *Home) Rules() []*core.Rule { return h.db.All() }

// RulesByOwner returns one user's rules.
func (h *Home) RulesByOwner(owner string) []*core.Rule {
	return h.db.ByOwner(vocab.Normalize(owner))
}

// ExportRules serializes the rule database (Sect. 4.3(iv)).
func (h *Home) ExportRules() ([]byte, error) { return h.db.Export() }

// ImportRules loads rules exported by ExportRules, recompiling their CADEL
// sources against this home's lexicon. It returns how many rules were added
// and their serialized records (for persistence).
func (h *Home) ImportRules(data []byte) (int, []registry.Record, error) {
	n, err := h.db.Import(data, h.compileSource)
	if n > 0 {
		h.engine.Tick()
	}
	recs := h.db.Records()
	return n, recs[len(recs)-n:], err
}

// SetPriority records a priority order for a device: users listed highest
// first, optionally attached to a context written in CADEL condition syntax.
// An empty context makes it the device's default order (Sect. 3.2, Fig. 7).
func (h *Home) SetPriority(ref core.DeviceRef, users []string, contextSource string) error {
	order := conflict.Order{Device: ref, ContextSource: contextSource}
	for _, u := range users {
		order.Users = append(order.Users, vocab.Normalize(u))
	}
	if contextSource != "" {
		expr, err := lang.ParseCondExpr(contextSource, h.lex)
		if err != nil {
			return fmt.Errorf("fleet: priority context: %w", err)
		}
		cond, err := h.compiler.CompileCondExpr(expr, "")
		if err != nil {
			return fmt.Errorf("fleet: priority context: %w", err)
		}
		order.Context = cond
	}
	h.priorities.Set(order)
	h.engine.Tick()
	return nil
}

// PriorityOrders returns the orders applying to a device, contextual first.
// The slice is the priority table's generation-gated cache (immutable once
// built; a later SetPriority produces a fresh one): treat it as read-only.
func (h *Home) PriorityOrders(ref core.DeviceRef) []conflict.Order {
	return h.priorities.OrdersFor(ref)
}

// ApplyEvent ingests one device event's context writes without evaluating;
// the shard flushes the accumulated dirty set in one pass afterwards.
func (h *Home) ApplyEvent(ev *eventMsg) {
	h.engine.Ingest(ev.deviceType, ev.friendlyName, ev.location, ev.vars)
}

// ApplyFast ingests a wire-decoded event and releases it back to its pool —
// application is the end of its ownership chain.
func (h *Home) ApplyFast(ev *ingest.Event) {
	h.engine.IngestEvent(ev)
	ev.Release()
}

// Flush runs one evaluation pass over everything ingested since the last.
func (h *Home) Flush() { h.engine.Tick() }

// Tick re-evaluates at the current clock time.
func (h *Home) Tick() { h.engine.Tick() }

// Log returns the home's fired-action log.
func (h *Home) Log() []engine.Fired { return h.engine.Log() }

// Context returns a copy of the home's current context.
func (h *Home) Context() *core.Context { return h.engine.Context() }

// Snapshot returns a cached read-only view of the home's current context.
// It is what observability endpoints should use: idle polls return the same
// object without cloning on the shard goroutine. Callers must not mutate it.
func (h *Home) Snapshot() *core.Context { return h.engine.Snapshot() }

// Symtab returns the home's symbol table. Each home owns exactly one (its
// rule database creates it; the engine and context share it), so symbol ids
// are meaningful only within the home — and only within the current
// compaction epoch (CompactSymbols).
func (h *Home) Symtab() *core.Symtab { return h.db.Symtab() }

// SymbolStats returns the home's symbol-table and id-slice footprint.
func (h *Home) SymbolStats() engine.SymbolStats { return h.engine.SymbolStats() }

// CompactSymbols forces a symbol-compaction epoch on the home's engine:
// live symbol ids are renumbered densely and every id holder (rule database,
// context, engine state, priority caches) is rewritten. The store is not
// involved — persisted records are CADEL source, and replay re-interns from
// scratch, so a rehydrated home naturally starts compact.
func (h *Home) CompactSymbols() (engine.CompactStats, bool) { return h.engine.CompactSymbols() }

// Owners returns the home's device → owning-rule-ID map.
func (h *Home) Owners() map[string]string { return h.engine.Owners() }

// Passes returns how many evaluation passes the home's engine has run.
func (h *Home) Passes() uint64 { return h.engine.Passes() }

// snapshotRecords serializes the home's durable state in dependency order:
// users (with favourites), user-defined words, rules, priority orders.
func (h *Home) snapshotRecords() []Record {
	var recs []Record
	for _, u := range h.users {
		recs = append(recs, Record{Home: h.id, Kind: RecordUser, User: u, Favorites: h.favorites[u]})
	}
	for _, w := range h.words {
		rk := RecordCondWord
		if w.kind == vocab.KindConfWord {
			rk = RecordConfWord
		}
		recs = append(recs, Record{Home: h.id, Kind: rk, Word: w.name, Owner: w.owner, Source: w.source})
	}
	for _, r := range h.db.Records() {
		recs = append(recs, Record{Home: h.id, Kind: RecordRule, ID: r.ID, Owner: r.Owner, Source: r.Source})
	}
	for _, o := range h.priorities.Orders() {
		dev := o.Device
		recs = append(recs, Record{
			Home: h.id, Kind: RecordPriority,
			Device: &dev, Users: append([]string(nil), o.Users...), Context: o.ContextSource,
		})
	}
	return recs
}

// ---- store-append rollbacks ----
// A mutation is undone when its store append fails, so in-memory state never
// outlives what a restart would rehydrate. Lexicon person entries are left
// in place (they may be shared across homes and are harmless alone).

func (h *Home) rollbackUser(name string) {
	name = vocab.Normalize(name)
	for i, u := range h.users {
		if u == name {
			h.users = append(h.users[:i:i], h.users[i+1:]...)
			break
		}
	}
	if _, had := h.favorites[name]; had {
		delete(h.favorites, name)
		h.engine.SetFavorites(name, nil)
	}
	h.engine.SetUsers(append([]string(nil), h.users...))
}

func (h *Home) rollbackRule(id string) {
	_ = h.db.Remove(id)
	h.engine.Tick()
}

func (h *Home) rollbackWord(kind vocab.Kind, name string) {
	_ = h.lex.Remove(kind, name)
	for i := len(h.words) - 1; i >= 0; i-- {
		if h.words[i].kind == kind && h.words[i].name == name {
			h.words = append(h.words[:i:i], h.words[i+1:]...)
			break
		}
	}
}

// applyRecord replays one persisted mutation onto the home.
func (h *Home) applyRecord(rec Record) error {
	switch rec.Kind {
	case RecordUser:
		return h.RegisterUser(rec.User, rec.Favorites...)
	case RecordFavorites:
		h.SetFavorites(rec.User, rec.Favorites)
		return nil
	case RecordCondWord:
		if err := h.lex.DefineCondWord(rec.Word, rec.Source, rec.Owner); err != nil {
			return err
		}
		h.words = append(h.words, wordDef{vocab.KindCondWord, vocab.Normalize(rec.Word), rec.Source, rec.Owner})
		return nil
	case RecordConfWord:
		if err := h.lex.DefineConfWord(rec.Word, rec.Source, rec.Owner); err != nil {
			return err
		}
		h.words = append(h.words, wordDef{vocab.KindConfWord, vocab.Normalize(rec.Word), rec.Source, rec.Owner})
		return nil
	case RecordRule:
		return h.restoreRule(rec.ID, rec.Owner, rec.Source)
	case RecordRemove:
		return h.RemoveRule(rec.ID)
	case RecordPriority:
		if rec.Device == nil {
			return errors.New("fleet: priority record without device")
		}
		return h.SetPriority(*rec.Device, rec.Users, rec.Context)
	default:
		return fmt.Errorf("fleet: unknown record kind %q", rec.Kind)
	}
}
