package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/vocab"
)

// task is one unit of shard work: either a coalescable device event, a
// per-home operation, or a shard-level operation.
type task struct {
	home    string
	event   *eventMsg       // coalescable ingestion (string/map shape)
	fast    *ingest.Event   // wire-decoded ingestion; inline so PostEventFast allocates nothing
	fn      func(*Home)     // per-home operation; receives nil if the home does not exist and create is unset
	shardFn func(*shard)    // shard-level operation (stats, barriers)
	create  bool            // materialize the home on first touch (mutations, ingestion)
	done    chan struct{}   // close-once ack (API operations, barriers)
	wg      *sync.WaitGroup // reusable ack for sync fast posts; pooled, so the hot sync path allocates nothing
}

// mailbox is an unbounded MPSC queue. Unboundedness is deliberate: a dispatch
// callback may feed events back into the hub (an actuated appliance notifies
// its own property change), and a bounded channel would deadlock the shard
// against its own downstream. Production backpressure belongs at the
// transport in front of PostEvent, not here.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []task
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a task; it reports false when the mailbox is closed.
func (m *mailbox) put(t task) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.queue = append(m.queue, t)
	if len(m.queue) == 1 {
		m.cond.Signal()
	}
	return true
}

// drainInto blocks until work arrives, then hands over the ENTIRE backlog in
// one swap — this is what turns an event flood into one coalesced batch. buf
// is the consumer's recycled slice. ok is false once closed and empty.
func (m *mailbox) drainInto(buf []task) (batch []task, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 {
		if m.closed {
			return nil, false
		}
		m.cond.Wait()
	}
	batch = m.queue
	m.queue = buf[:0]
	return batch, true
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// shard owns a partition of the hub's homes. All state below is touched only
// by the shard's goroutine (and by replay, before that goroutine starts).
type shard struct {
	hub     *Hub
	mb      *mailbox
	sm      *obs.ShardMetrics // this shard's stripe of the hub's metrics
	homes   map[string]*Home
	pending map[string]*Home // homes with ingested-but-unevaluated events
	spare   []task           // recycled drain buffer
	events  uint64           // device events ingested
}

func (s *shard) run() {
	defer s.hub.wg.Done()
	for {
		batch, ok := s.mb.drainInto(s.spare)
		if !ok {
			s.flush()
			return
		}
		for i := range batch {
			s.exec(batch[i])
			batch[i] = task{} // drop references for the recycled buffer
		}
		s.flush()
		s.spare = batch
	}
}

func (s *shard) exec(t task) {
	if t.shardFn != nil {
		s.flush()
		t.shardFn(s)
		if t.done != nil {
			close(t.done)
		}
		return
	}
	// Reads on a home that was never written leave hm nil: a probe of an
	// unknown home id must not grow the shard's home map.
	hm := s.homes[t.home]
	if hm == nil && t.create {
		hm = s.home(t.home)
	}
	if t.event != nil || t.fast != nil {
		if t.fast != nil {
			hm.ApplyFast(t.fast)
		} else {
			hm.ApplyEvent(t.event)
		}
		s.pending[t.home] = hm
		s.events++
		if t.done != nil || t.wg != nil { // synchronous event: evaluate before acking
			s.flush()
			if t.done != nil {
				close(t.done)
			}
			if t.wg != nil {
				t.wg.Done()
			}
		}
		return
	}
	// Operations observe fully evaluated state and run in arrival order
	// relative to the events around them.
	s.flush()
	t.fn(hm)
	if t.done != nil {
		close(t.done)
	}
}

// flush evaluates every home with pending ingested events: one engine pass
// per home regardless of how many events the backlog held for it.
func (s *shard) flush() {
	for id, hm := range s.pending {
		delete(s.pending, id)
		hm.Flush()
	}
}

// home returns the shard's home, creating it on first touch.
func (s *shard) home(id string) *Home {
	hm, ok := s.homes[id]
	if !ok {
		hm = newHome(id, &s.hub.cfg, s.hub.batchDispatcherFor(id), s.sm)
		s.homes[id] = hm
		s.hub.metrics.Homes.Add(1)
	}
	return hm
}

// dispatchJob is one fired action being applied by the worker pool.
type dispatchJob struct {
	home  string
	batch []engine.Fired
	i     int
	wg    *sync.WaitGroup
}

// Hub is the sharded multi-home engine.
type Hub struct {
	cfg     config
	store   Store
	metrics *obs.Metrics
	shards  []*shard
	jobs    chan dispatchJob
	wg      sync.WaitGroup
	poolWG  sync.WaitGroup

	mu        sync.RWMutex // guards closed against in-flight sends
	closed    bool
	compactMu sync.Mutex // serializes Compact's stop-the-world pause

	// Migration seals (see migrate.go). sealedN is the hot-path fast gate:
	// the ingest path pays one atomic load while nothing in the fleet is
	// sealed, keeping steady-state posts allocation- and lock-free.
	sealMu      sync.RWMutex
	sealedHomes map[string]struct{}
	sealedN     atomic.Int32

	events atomic.Uint64 // events accepted by PostEvent[Sync]
}

// NewHub builds and starts a hub. With a store attached, every home recorded
// there is rehydrated — users, words, rules, priorities — before the shards
// start serving.
func NewHub(opts ...HubOption) (*Hub, error) {
	cfg := config{
		shards:   runtime.GOMAXPROCS(0),
		now:      time.Now,
		eventTTL: 4 * time.Hour,
		logLimit: DefaultLogLimit,
		traceCap: DefaultTraceLimit,
		lexicon:  func(string) *vocab.Lexicon { return vocab.Default() },
	}
	for _, o := range opts {
		o.apply(&cfg)
	}
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	h := &Hub{cfg: cfg, store: cfg.store, metrics: obs.New(cfg.shards),
		sealedHomes: make(map[string]struct{})}
	if ms, ok := h.store.(interface{ SetStoreMetrics(*obs.StoreMetrics) }); ok {
		ms.SetStoreMetrics(&h.metrics.Store)
	}
	for i := 0; i < cfg.shards; i++ {
		h.shards = append(h.shards, &shard{
			hub:     h,
			mb:      newMailbox(),
			sm:      h.metrics.Shard(i),
			homes:   make(map[string]*Home),
			pending: make(map[string]*Home),
		})
	}
	if cfg.dispatchWorkers > 0 {
		h.jobs = make(chan dispatchJob, cfg.dispatchWorkers)
		h.poolWG.Add(cfg.dispatchWorkers)
		for i := 0; i < cfg.dispatchWorkers; i++ {
			go h.dispatchWorker()
		}
	}
	if h.store != nil {
		if err := h.replay(); err != nil {
			h.stopPool()
			_ = h.store.Close() // the hub owns the store from WithStore on
			return nil, err
		}
	}
	h.wg.Add(len(h.shards))
	for _, s := range h.shards {
		go s.run()
	}
	return h, nil
}

// replay rehydrates every home from the store. It runs before the shard
// goroutines start, so it touches shard state directly. Rehydration runs the
// engines in quiet mode: replayed rules whose conditions hold on the rebuilt
// context are adopted as device owners without dispatching — the actions
// fired in the process's previous life, and a restart must not fire them
// again (the same exactly-once argument migration import relies on).
func (h *Hub) replay() error {
	defer func() {
		for _, s := range h.shards {
			for _, hm := range s.homes {
				hm.engine.SetQuiet(false)
			}
		}
	}()
	return h.store.Replay(func(rec Record) error {
		if rec.Home == "" {
			return errors.New("fleet: record without home")
		}
		s := h.shardFor(rec.Home)
		if rec.Kind == RecordHomeReset {
			// Migration tombstone: discard everything replayed for this home
			// so far. A released home stays gone; an interrupted import's
			// partial records are superseded by the retry that follows.
			if _, ok := s.homes[rec.Home]; ok {
				delete(s.homes, rec.Home)
				h.metrics.Homes.Add(-1)
			}
			return nil
		}
		hm := s.home(rec.Home)
		hm.engine.SetQuiet(true) // idempotent; lifted when replay finishes
		if err := hm.applyRecord(rec); err != nil {
			return fmt.Errorf("fleet: replay home %q: %w", rec.Home, err)
		}
		return nil
	})
}

// healthReporter is implemented by store backends with failure modes worth
// surfacing (RemoteStore's breaker); local stores have none.
type healthReporter interface{ StoreHealth() StoreHealth }

// StoreHealth reports the attached store backend's health. ok is false when
// no store is attached or the backend has no health to report (MemStore,
// FileStore).
func (h *Hub) StoreHealth() (StoreHealth, bool) {
	if hr, ok := h.store.(healthReporter); ok {
		return hr.StoreHealth(), true
	}
	return StoreHealth{}, false
}

func (h *Hub) shardFor(home string) *shard {
	// Inline FNV-1a: hash/fnv's interface value would allocate on every
	// event in the ingestion hot path.
	hash := uint32(2166136261)
	for i := 0; i < len(home); i++ {
		hash ^= uint32(home[i])
		hash *= 16777619
	}
	return h.shards[hash%uint32(len(h.shards))]
}

// batchDispatcherFor wires one home's engine to the hub's dispatch path: the
// whole fired batch of one pass goes out together — through the worker pool
// when one is configured, inline otherwise — and Err lands back in each entry
// before the engine logs the batch.
func (h *Hub) batchDispatcherFor(home string) engine.BatchDispatcher {
	return func(batch []engine.Fired) {
		disp := h.cfg.dispatch
		if disp == nil {
			return
		}
		if h.jobs == nil || len(batch) == 1 {
			for i := range batch {
				batch[i].Err = disp(home, batch[i].Rule.Device, batch[i].Rule.Action)
			}
			return
		}
		var wg sync.WaitGroup
		wg.Add(len(batch))
		for i := range batch {
			h.jobs <- dispatchJob{home: home, batch: batch, i: i, wg: &wg}
		}
		wg.Wait()
	}
}

func (h *Hub) dispatchWorker() {
	defer h.poolWG.Done()
	for j := range h.jobs {
		j.batch[j.i].Err = h.cfg.dispatch(j.home, j.batch[j.i].Rule.Device, j.batch[j.i].Rule.Action)
		j.wg.Done()
	}
}

func (h *Hub) stopPool() {
	if h.jobs != nil {
		close(h.jobs)
		h.poolWG.Wait()
	}
}

// Close drains and stops every shard, then the dispatch pool, then the store.
// Operations already enqueued still complete; later ones fail with ErrClosed.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	for _, s := range h.shards {
		s.mb.close()
	}
	h.mu.Unlock()
	h.wg.Wait()
	// Shards are stopped: drain every engine's batched metric accumulators so
	// a post-Close scrape of the registry reads final counts.
	for _, s := range h.shards {
		for _, hm := range s.homes {
			hm.engine.FlushMetrics()
		}
	}
	h.stopPool()
	if h.store != nil {
		return h.store.Close()
	}
	return nil
}

// send enqueues a task for the home's shard under the closed-check lock.
func (h *Hub) send(home string, t task) error {
	if home == "" {
		return errors.New("fleet: empty home id")
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed || !h.shardFor(home).mb.put(t) {
		return ErrClosed
	}
	return nil
}

// do runs fn on the home's shard goroutine and waits for it; fn receives nil
// when the home does not exist (reads must not materialize homes). Calling
// do from code already running on that shard (an OnFire observer, a
// dispatcher) would deadlock — observers get everything they need as
// arguments instead.
func (h *Hub) do(home string, fn func(*Home) error) error {
	return h.exec(home, false, fn)
}

// doCreate is do for mutations: the home is materialized on first touch.
func (h *Hub) doCreate(home string, fn func(*Home) error) error {
	return h.exec(home, true, fn)
}

func (h *Hub) exec(home string, create bool, fn func(*Home) error) error {
	var err error
	done := make(chan struct{})
	if sendErr := h.send(home, task{
		home:   home,
		create: create,
		fn:     func(hm *Home) { err = fn(hm) },
		done:   done,
	}); sendErr != nil {
		return sendErr
	}
	<-done
	return err
}

// barrier runs fn synchronously on every shard, one after another.
func (h *Hub) barrier(fn func(*shard)) error {
	for _, s := range h.shards {
		done := make(chan struct{})
		h.mu.RLock()
		ok := !h.closed && s.mb.put(task{shardFn: fn, done: done})
		h.mu.RUnlock()
		if !ok {
			return ErrClosed
		}
		<-done
	}
	return nil
}

// Quiesce blocks until every event enqueued before the call has been
// ingested and evaluated. Benchmarks and tests use it as a drain barrier.
func (h *Hub) Quiesce() error { return h.barrier(func(*shard) {}) }

// NumShards returns the hub's shard count.
func (h *Hub) NumShards() int { return len(h.shards) }

// ShardQueues returns each shard's mailbox depth right now, in shard order —
// the signal admission control sheds on, exposed per shard because one hot
// shard can be saturated while the rest of the fleet idles.
func (h *Hub) ShardQueues() []int {
	out := make([]int, len(h.shards))
	for i, s := range h.shards {
		s.mb.mu.Lock()
		out[i] = len(s.mb.queue)
		s.mb.mu.Unlock()
	}
	return out
}

// EventsAccepted returns how many device events PostEvent* accepted.
func (h *Hub) EventsAccepted() uint64 { return h.events.Load() }

// ---- per-home operations ----
// Every operation runs on the home's shard goroutine, serialized with the
// home's event stream: an operation observes all events enqueued before it.
// Mutations materialize the home on first touch and, when a store append
// fails, roll themselves back so memory never outlives what a restart would
// rehydrate. Reads on a home that was never written return empty results
// without creating anything (probing ids must not grow the fleet).

// RegisterUser adds a user to a home, creating the home on first touch.
func (h *Hub) RegisterUser(home, name string, favorites ...string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	return h.doCreate(home, func(hm *Home) error {
		if err := hm.RegisterUser(name, favorites...); err != nil {
			return err
		}
		if err := h.append(Record{Home: home, Kind: RecordUser, User: vocab.Normalize(name), Favorites: favorites}); err != nil {
			hm.rollbackUser(name)
			return err
		}
		return nil
	})
}

// Users returns a home's registered users.
func (h *Hub) Users(home string) ([]string, error) {
	var out []string
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.Users()
		}
		return nil
	})
	return out, err
}

// SetFavorites replaces a user's favourite keywords.
func (h *Hub) SetFavorites(home, user string, keywords []string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	return h.doCreate(home, func(hm *Home) error {
		old, had := hm.favorites[vocab.Normalize(user)]
		hm.SetFavorites(user, keywords)
		if err := h.append(Record{Home: home, Kind: RecordFavorites, User: vocab.Normalize(user), Favorites: keywords}); err != nil {
			if had {
				hm.SetFavorites(user, old)
			} else {
				delete(hm.favorites, vocab.Normalize(user))
				hm.engine.SetFavorites(vocab.Normalize(user), nil)
			}
			return err
		}
		return nil
	})
}

// Submit parses and registers one CADEL command for a home (see Home.Submit).
func (h *Hub) Submit(home, source, owner string) (*Result, error) {
	if err := h.sealedErr(home); err != nil {
		return nil, err
	}
	var res *Result
	err := h.doCreate(home, func(hm *Home) error {
		var err error
		res, err = hm.Submit(source, owner)
		if err != nil {
			return err
		}
		var rec Record
		var undo func()
		switch {
		case res.Rule != nil:
			rec = Record{Home: home, Kind: RecordRule,
				ID: res.Rule.ID, Owner: res.Rule.Owner, Source: res.Rule.Source}
			undo = func() { hm.rollbackRule(res.Rule.ID) }
		case res.WordKind == vocab.KindCondWord:
			rec = Record{Home: home, Kind: RecordCondWord,
				Word: res.DefinedWord, Owner: vocab.Normalize(owner), Source: res.WordSource}
			undo = func() { hm.rollbackWord(vocab.KindCondWord, res.DefinedWord) }
		case res.WordKind == vocab.KindConfWord:
			rec = Record{Home: home, Kind: RecordConfWord,
				Word: res.DefinedWord, Owner: vocab.Normalize(owner), Source: res.WordSource}
			undo = func() { hm.rollbackWord(vocab.KindConfWord, res.DefinedWord) }
		default:
			return nil
		}
		if err := h.append(rec); err != nil {
			undo()
			res = nil
			return err
		}
		return nil
	})
	return res, err
}

// RemoveRule deletes a home's rule by id.
func (h *Hub) RemoveRule(home, id string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	return h.do(home, func(hm *Home) error {
		if hm == nil {
			return fmt.Errorf("%w: %q", registry.ErrNotFound, id)
		}
		removed, _ := hm.db.Get(id)
		if err := hm.RemoveRule(id); err != nil {
			return err
		}
		if err := h.append(Record{Home: home, Kind: RecordRemove, ID: id}); err != nil {
			if removed != nil {
				_ = hm.restoreRule(removed.ID, removed.Owner, removed.Source)
			}
			return err
		}
		return nil
	})
}

// Rules returns a home's rules in registration order.
func (h *Hub) Rules(home string) ([]*core.Rule, error) {
	var out []*core.Rule
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.Rules()
		}
		return nil
	})
	return out, err
}

// RulesByOwner returns one user's rules in a home.
func (h *Hub) RulesByOwner(home, owner string) ([]*core.Rule, error) {
	var out []*core.Rule
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.RulesByOwner(owner)
		}
		return nil
	})
	return out, err
}

// ExportRules serializes a home's rule database.
func (h *Hub) ExportRules(home string) ([]byte, error) {
	var out []byte
	err := h.do(home, func(hm *Home) error {
		if hm == nil {
			var err error
			out, err = registry.New().Export()
			return err
		}
		var err error
		out, err = hm.ExportRules()
		return err
	})
	return out, err
}

// ImportRules loads rules exported by ExportRules into a home. Rules whose
// store append fails are rolled back, so the reported count matches what a
// restart would rehydrate.
func (h *Hub) ImportRules(home string, data []byte) (int, error) {
	if err := h.sealedErr(home); err != nil {
		return 0, err
	}
	var n int
	err := h.doCreate(home, func(hm *Home) error {
		var recs []registry.Record
		var err error
		n, recs, err = hm.ImportRules(data)
		for _, r := range recs {
			if aerr := h.append(Record{Home: home, Kind: RecordRule, ID: r.ID, Owner: r.Owner, Source: r.Source}); aerr != nil {
				hm.rollbackRule(r.ID)
				n--
				if err == nil {
					err = aerr
				}
			}
		}
		return err
	})
	return n, err
}

// SetPriority records a priority order for a device in a home. A failed
// store append is reported but not rolled back (the previous order is
// overwritten in place); the caller should retry.
func (h *Hub) SetPriority(home string, ref core.DeviceRef, users []string, contextSource string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	return h.doCreate(home, func(hm *Home) error {
		if err := hm.SetPriority(ref, users, contextSource); err != nil {
			return err
		}
		dev := ref
		return h.append(Record{
			Home: home, Kind: RecordPriority,
			Device: &dev, Users: users, Context: contextSource,
		})
	})
}

// PriorityOrders returns the orders applying to a device in a home.
func (h *Hub) PriorityOrders(home string, ref core.DeviceRef) ([]conflict.Order, error) {
	var out []conflict.Order
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.PriorityOrders(ref)
		}
		return nil
	})
	return out, err
}

// PostEvent asynchronously ingests a device event for a home. Events of one
// home are applied in posting order; a backlog coalesces into a single
// evaluation pass. The hub takes ownership of vars.
func (h *Hub) PostEvent(home, deviceType, friendlyName, location string, vars map[string]string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	return h.PostEventFeedback(home, deviceType, friendlyName, location, vars)
}

// PostEventFeedback is PostEvent without the migration-seal check: the entry
// point for dispatch-feedback chains (an actuated appliance notifying its own
// property change from a Dispatcher or OnFire callback). A sealed home's
// in-flight chains keep draining through here — the coordinator's quiesce
// loop waits for them — while new external posts bounce with 503.
func (h *Hub) PostEventFeedback(home, deviceType, friendlyName, location string, vars map[string]string) error {
	err := h.send(home, task{home: home, create: true, event: &eventMsg{
		deviceType: deviceType, friendlyName: friendlyName, location: location, vars: vars,
	}})
	if err == nil {
		h.events.Add(1)
	}
	return err
}

// PostEventSync ingests a device event and waits until the home has
// evaluated it.
func (h *Hub) PostEventSync(home, deviceType, friendlyName, location string, vars map[string]string) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	done := make(chan struct{})
	err := h.send(home, task{home: home, create: true, event: &eventMsg{
		deviceType: deviceType, friendlyName: friendlyName, location: location, vars: vars,
	}, done: done})
	if err != nil {
		return err
	}
	h.events.Add(1)
	<-done
	return nil
}

// PostEventFast asynchronously ingests a wire-decoded event. On success the
// hub takes ownership of ev (including every slice decoded from it) and
// releases it to the pool after the home applies it; on error the caller
// still owns ev. This is the ingest.Poster surface the fast sink posts into.
func (h *Hub) PostEventFast(home string, ev *ingest.Event) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	err := h.send(home, task{home: home, create: true, fast: ev})
	if err == nil {
		h.events.Add(1)
	}
	return err
}

// syncWaiters pools the WaitGroups that ack synchronous fast posts: a
// one-shot channel per event would be the last allocation left on the sync
// hot path. Reuse is safe because each waiter's Wait has returned before
// the pool sees it again.
var syncWaiters = sync.Pool{New: func() any { return new(sync.WaitGroup) }}

// PostEventFastSync is PostEventFast waiting until the home has evaluated
// the event. Ownership transfers as in PostEventFast; ev is already released
// by the time this returns.
func (h *Hub) PostEventFastSync(home string, ev *ingest.Event) error {
	if err := h.sealedErr(home); err != nil {
		return err
	}
	wg := syncWaiters.Get().(*sync.WaitGroup)
	wg.Add(1)
	err := h.send(home, task{home: home, create: true, fast: ev, wg: wg})
	if err != nil {
		wg.Done()
		syncWaiters.Put(wg)
		return err
	}
	h.events.Add(1)
	wg.Wait()
	syncWaiters.Put(wg)
	return nil
}

// Backlog reports how many tasks are queued right now on the shard that owns
// home — the admission-control load signal: the shard mailbox is unbounded
// by design, so the transport sheds on this depth instead.
func (h *Hub) Backlog(home string) int {
	s := h.shardFor(home)
	s.mb.mu.Lock()
	defer s.mb.mu.Unlock()
	return len(s.mb.queue)
}

// Tick re-evaluates a home at the current clock time (after advancing a
// simulation clock). A no-op for homes that do not exist yet.
func (h *Hub) Tick(home string) error {
	return h.do(home, func(hm *Home) error {
		if hm != nil {
			hm.Tick()
		}
		return nil
	})
}

// Log returns a home's fired-action log.
func (h *Hub) Log(home string) ([]engine.Fired, error) {
	var out []engine.Fired
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.Log()
		}
		return nil
	})
	return out, err
}

// Context returns a copy of a home's current context. Only the cheap cached
// snapshot is taken on the home's shard goroutine; the mutation-safe deep
// clone happens on the caller, so observability never stalls the shard.
func (h *Hub) Context(home string) (*core.Context, error) {
	var snap *core.Context
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			snap = hm.Snapshot()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return core.NewContext(h.cfg.now()), nil
	}
	return snap.Clone(), nil
}

// Owners returns a home's device → owning-rule-ID map.
func (h *Hub) Owners(home string) (map[string]string, error) {
	out := map[string]string{}
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.Owners()
		}
		return nil
	})
	return out, err
}

// HomeStats is one home's observability snapshot: rule/user counts, the
// engine's pass counters, and its symbol-table / id-slice footprint (the
// idle-memory side of the symtab id-space hygiene work).
type HomeStats struct {
	Home    string             `json:"home"`
	Users   int                `json:"users"`
	Rules   int                `json:"rules"`
	Passes  uint64             `json:"passes"`
	Batches uint64             `json:"dispatch_batches"`
	Symbols engine.SymbolStats `json:"symbols"`
	// Backlog is the queue depth of the shard owning this home at snapshot
	// time — the signal admission control sheds on.
	Backlog int `json:"backlog"`
}

// HomeStats returns one home's counters and symbol footprint. It fails with
// ErrNoHome for homes that were never written (reads must not materialize
// homes).
func (h *Hub) HomeStats(home string) (HomeStats, error) {
	st := HomeStats{Home: home, Backlog: h.Backlog(home)}
	err := h.do(home, func(hm *Home) error {
		if hm == nil {
			return ErrNoHome
		}
		st.Users = len(hm.users)
		st.Rules = hm.db.Len()
		st.Passes = hm.engine.Passes()
		st.Batches = hm.engine.DispatchBatches()
		st.Symbols = hm.SymbolStats()
		return nil
	})
	return st, err
}

// CompactHome forces a symbol-compaction epoch on one home's engine,
// mirroring the store-level Compact endpoint at the id layer. It runs on the
// home's shard goroutine, serialized with the home's event stream like any
// other operation. compacted is false when the home's engine runs an oracle
// mode (string-keyed or full-scan) and holds no compactible ids.
func (h *Hub) CompactHome(home string) (st engine.CompactStats, compacted bool, err error) {
	err = h.do(home, func(hm *Home) error {
		if hm == nil {
			return ErrNoHome
		}
		st, compacted = hm.CompactSymbols()
		return nil
	})
	return st, compacted, err
}

// Passes returns how many evaluation passes a home's engine has run.
func (h *Hub) Passes(home string) (uint64, error) {
	var out uint64
	err := h.do(home, func(hm *Home) error {
		if hm != nil {
			out = hm.Passes()
		}
		return nil
	})
	return out, err
}

func (h *Hub) append(rec Record) error {
	if h.store == nil {
		return nil
	}
	if err := h.store.Append(rec); err != nil {
		return err
	}
	h.metrics.StoreAppends.Inc()
	return nil
}

// Metrics returns the hub's metrics registry after a flush barrier: every
// home engine drains its batched accumulators first, so a scrape right after
// Quiesce observes deterministic counts. On a closed hub the barrier is a
// no-op (Close already flushed) and the final counters are returned.
func (h *Hub) Metrics() *obs.Metrics {
	_ = h.barrier(func(s *shard) {
		for _, hm := range s.homes {
			hm.engine.FlushMetrics()
		}
	})
	return h.metrics
}

// Trace returns a home's firing-trace ring, oldest pass first. It fails with
// ErrNoHome for homes that were never written, and returns nil when tracing
// is disabled (WithTraceLimit(0)).
func (h *Hub) Trace(home string) ([]engine.PassTrace, error) {
	var out []engine.PassTrace
	err := h.do(home, func(hm *Home) error {
		if hm == nil {
			return ErrNoHome
		}
		out = hm.engine.TraceSnapshot()
		return nil
	})
	return out, err
}

// ---- fleet-wide operations ----

// Homes returns every home id across all shards, sorted.
func (h *Hub) Homes() ([]string, error) {
	var out []string
	err := h.barrier(func(s *shard) {
		for id := range s.homes {
			out = append(out, id)
		}
	})
	sort.Strings(out)
	return out, err
}

// Stats aggregates the hub's ingestion and evaluation counters.
type Stats struct {
	Shards int    `json:"shards"`
	Homes  int    `json:"homes"`
	Events uint64 `json:"events"` // device events accepted
	Passes uint64 `json:"passes"` // engine evaluation passes across homes
	// Batches counts evaluation passes that fired at least one action (each
	// pass's fired set leaves the engine as one dispatch batch) — NOT the
	// number of individual fired actions; read a home's Log for those.
	Batches uint64 `json:"dispatch_batches"`
	Rules   int    `json:"rules"`  // registered rules across homes
	Queued  int    `json:"queued"` // tasks waiting in mailboxes right now
	// ShardQueues is the per-shard mailbox depth behind Queued, in shard
	// order — the granularity admission control sheds on (one hot shard can
	// be saturated while the rest of the fleet idles).
	ShardQueues []int `json:"shard_queues"`
}

// Stats returns a consistent-enough snapshot of the hub's counters. The
// events/passes ratio is the ingestion coalescing factor.
func (h *Hub) Stats() (Stats, error) {
	st := Stats{Shards: len(h.shards), Events: h.events.Load()}
	st.ShardQueues = make([]int, len(h.shards))
	for i, s := range h.shards {
		s.mb.mu.Lock()
		st.ShardQueues[i] = len(s.mb.queue)
		st.Queued += len(s.mb.queue)
		s.mb.mu.Unlock()
	}
	err := h.barrier(func(s *shard) {
		st.Homes += len(s.homes)
		for _, hm := range s.homes {
			hm.engine.FlushMetrics()
			st.Rules += hm.db.Len()
		}
	})
	// Pass/batch totals come from the metrics registry (flushed by the
	// barrier above) instead of a second per-home counter walk.
	tot := h.metrics.Totals()
	st.Passes = tot.Passes
	st.Batches = tot.DispatchBatches
	return st, err
}

// Compact writes a snapshot of every home's durable state to the store and
// truncates its log. Every shard is held at the snapshot point until the
// truncation completes — otherwise a mutation appended by an
// already-released shard would land in the WAL only to be truncated away,
// lost to the next restart. No-op without a store.
func (h *Hub) Compact() error {
	if h.store == nil {
		return nil
	}
	// Only one compactor may pause the shards at a time: two interleaved
	// pause-task enqueues could order differently on different shards, each
	// compactor then waiting on a shard paused for the other — a permanent
	// fleet-wide deadlock.
	h.compactMu.Lock()
	defer h.compactMu.Unlock()
	var (
		mu      sync.Mutex
		recs    []Record
		arrived sync.WaitGroup
		release = make(chan struct{})
	)
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return ErrClosed
	}
	// Under the read lock Close cannot run, so every put succeeds and every
	// shard is guaranteed to reach the pause point.
	arrived.Add(len(h.shards))
	for _, s := range h.shards {
		s.mb.put(task{shardFn: func(sh *shard) {
			ids := make([]string, 0, len(sh.homes))
			for id := range sh.homes {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			mu.Lock()
			for _, id := range ids {
				recs = append(recs, sh.homes[id].snapshotRecords()...)
			}
			mu.Unlock()
			arrived.Done()
			<-release
		}})
	}
	h.mu.RUnlock()
	arrived.Wait()
	err := h.store.WriteSnapshot(recs)
	close(release)
	return err
}
