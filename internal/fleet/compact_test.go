package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/device"
	"repro/internal/engine"
)

// TestHubHomeStatsAndCompact covers the per-home observability and
// compaction operations at the hub level: stats report the symbol
// footprint, removals grow the dead estimate, a forced epoch shrinks the
// table and resets it, and the home keeps evaluating afterwards.
func TestHubHomeStatsAndCompact(t *testing.T) {
	h := newTestHub(t, WithShards(1))

	// Reads on unknown homes fail without materializing them.
	if _, err := h.HomeStats("ghost"); !errors.Is(err, ErrNoHome) {
		t.Fatalf("HomeStats(ghost) err = %v, want ErrNoHome", err)
	}
	if _, _, err := h.CompactHome("ghost"); !errors.Is(err, ErrNoHome) {
		t.Fatalf("CompactHome(ghost) err = %v, want ErrNoHome", err)
	}
	if homes, _ := h.Homes(); len(homes) != 0 {
		t.Fatalf("probing ghost homes materialized %v", homes)
	}

	seedHome(t, h, "casa")
	st, err := h.HomeStats("casa")
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 1 || st.Rules != 1 || st.Symbols.Symbols == 0 || st.Symbols.Epoch != 0 {
		t.Fatalf("seeded stats = %+v", st)
	}
	before := st.Symbols.Symbols

	if err := h.RemoveRule("casa", "tom-1"); err != nil {
		t.Fatal(err)
	}
	if st, _ = h.HomeStats("casa"); st.Symbols.DeadEstimate == 0 {
		t.Fatalf("dead estimate zero after removal: %+v", st.Symbols)
	}

	cst, compacted, err := h.CompactHome("casa")
	if err != nil || !compacted {
		t.Fatalf("CompactHome = %+v, %v, %v", cst, compacted, err)
	}
	if cst.Epoch != 1 || cst.After >= before {
		t.Fatalf("compaction epoch = %+v, want epoch 1 and a smaller table than %d", cst, before)
	}
	if st, _ = h.HomeStats("casa"); st.Symbols.DeadEstimate != 0 || st.Symbols.Epoch != 1 {
		t.Fatalf("post-compaction stats = %+v", st.Symbols)
	}

	// The home still compiles, evaluates and fires on the renumbered ids.
	if _, err := h.Submit("casa", hotRule, "tom"); err != nil {
		t.Fatal(err)
	}
	postTemp(t, h, "casa", "31")
	if err := h.Quiesce(); err != nil {
		t.Fatal(err)
	}
	log, err := h.Log("casa")
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0].Rule.Device.Key() != "air conditioner" {
		t.Fatalf("post-compaction log = %v", log)
	}
}

// TestHubCompactOracleModes: a string-keyed hub reports compacted=false (no
// ids to compact) rather than an error.
func TestHubCompactOracleModes(t *testing.T) {
	h := newTestHub(t, WithShards(1), WithStringKeys())
	seedHome(t, h, "casa")
	if _, compacted, err := h.CompactHome("casa"); err != nil || compacted {
		t.Fatalf("CompactHome on string-keyed hub = %v, %v, want false, nil", compacted, err)
	}
}

// TestFleetHTTPStatsAndCompact covers the HTTP surface of the two new
// endpoints, including 404s for unknown homes.
func TestFleetHTTPStatsAndCompact(t *testing.T) {
	hub := newTestHub(t, WithShards(2))
	ts := httptest.NewServer(NewHTTPHandler(hub))
	defer ts.Close()

	if resp, _ := doJSON(t, ts, "GET", "/fleet/homes/ghost/stats", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost stats: %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, ts, "POST", "/fleet/homes/ghost/compact", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost compact: %d", resp.StatusCode)
	}

	seedHome(t, hub, "casa")
	var st HomeStats
	resp, body := doJSON(t, ts, "GET", "/fleet/homes/casa/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get stats: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Home != "casa" || st.Rules != 1 || st.Symbols.Symbols == 0 {
		t.Fatalf("stats body = %s", body)
	}

	if err := hub.RemoveRule("casa", "tom-1"); err != nil {
		t.Fatal(err)
	}
	resp, body = doJSON(t, ts, "POST", "/fleet/homes/casa/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post compact: %d %s", resp.StatusCode, body)
	}
	var cb compactBody
	if err := json.Unmarshal(body, &cb); err != nil {
		t.Fatal(err)
	}
	if !cb.Compacted || cb.Epoch != 1 || cb.After >= cb.Before {
		t.Fatalf("compact body = %s", body)
	}
}

// TestHubDefaultLogLimit: fleet homes bound their fired-action logs by
// default; the engine keeps at most ~2x DefaultLogLimit entries between
// trims, and WithLogLimit(0) restores the unbounded log.
func TestHubDefaultLogLimit(t *testing.T) {
	events := DefaultLogLimit * 5 // threshold flips every other event → events/2 fires
	wantFires := events / 2
	run := func(t *testing.T, opts ...HubOption) []engine.Fired {
		h := newTestHub(t, append([]HubOption{WithShards(1)}, opts...)...)
		seedHome(t, h, "casa")
		for i := 0; i < events; i++ {
			v := "31"
			if i%2 == 1 {
				v = "20"
			}
			if err := h.PostEventSync("casa", device.TypeThermometer,
				"thermometer", "living room", map[string]string{"temperature": v}); err != nil {
				t.Fatal(err)
			}
		}
		log, err := h.Log("casa")
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	if log := run(t); len(log) > 2*DefaultLogLimit || len(log) == wantFires {
		t.Fatalf("default hub log holds %d entries, want a trimmed ring <= %d", len(log), 2*DefaultLogLimit)
	}
	if log := run(t, WithLogLimit(0)); len(log) != wantFires {
		t.Fatalf("unbounded hub log holds %d entries, want %d", len(log), wantFires)
	}
}
