// Package httpapi exposes the home server to interface devices — the touch
// panels, PDAs and set-top boxes of the paper's Fig. 2 — as a small JSON/HTTP
// API. Every operation of the rule description support module (submit,
// lookup, priority setup, import/export) is available remotely, so GUI or
// voice front ends stay thin shells, exactly as the paper intends.
package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	cadel "repro"
)

// Handler serves the JSON API for one home server.
type Handler struct {
	srv *cadel.Server
	mux *http.ServeMux
}

// New builds the API handler.
func New(srv *cadel.Server) *Handler {
	h := &Handler{srv: srv, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /api/users", h.getUsers)
	h.mux.HandleFunc("POST /api/users", h.postUsers)
	h.mux.HandleFunc("GET /api/devices", h.getDevices)
	h.mux.HandleFunc("GET /api/lookup", h.getLookup)
	h.mux.HandleFunc("GET /api/rules", h.getRules)
	h.mux.HandleFunc("POST /api/rules", h.postRules)
	h.mux.HandleFunc("DELETE /api/rules/{id}", h.deleteRule)
	h.mux.HandleFunc("POST /api/priority", h.postPriority)
	h.mux.HandleFunc("GET /api/log", h.getLog)
	h.mux.HandleFunc("GET /api/export", h.getExport)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, cadel.ErrUnknownUser):
		status = http.StatusNotFound
	case errors.Is(err, cadel.ErrForbidden):
		status = http.StatusForbidden
	case errors.Is(err, cadel.ErrInconsistent):
		status = http.StatusUnprocessableEntity
	default:
		// Parse and compile problems are client errors.
		if strings.Contains(err.Error(), "parse error") ||
			strings.Contains(err.Error(), "compile error") ||
			strings.Contains(err.Error(), "lang:") {
			status = http.StatusBadRequest
		}
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// ---- users ----

type userRequest struct {
	Name      string   `json:"name"`
	Favorites []string `json:"favorites,omitempty"`
}

func (h *Handler) getUsers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.srv.Users())
}

func (h *Handler) postUsers(w http.ResponseWriter, r *http.Request) {
	var req userRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if err := h.srv.RegisterUser(req.Name, req.Favorites...); err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, req.Name)
}

// ---- devices & lookup ----

type deviceBody struct {
	UDN      string   `json:"udn"`
	Name     string   `json:"name"`
	Type     string   `json:"type"`
	Location string   `json:"location,omitempty"`
	Verbs    []string `json:"verbs,omitempty"`
	Words    []string `json:"words,omitempty"`
}

func (h *Handler) deviceBody(d *cadel.RemoteDevice) deviceBody {
	return deviceBody{
		UDN:      d.UDN,
		Name:     d.FriendlyName,
		Type:     d.DeviceType,
		Location: d.Location,
		Verbs:    h.srv.AllowedVerbs(d),
		Words:    h.srv.WordsFor(d),
	}
}

func (h *Handler) getDevices(w http.ResponseWriter, _ *http.Request) {
	devices := h.srv.Devices()
	out := make([]deviceBody, 0, len(devices))
	for _, d := range devices {
		out = append(out, h.deviceBody(d))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) getLookup(w http.ResponseWriter, r *http.Request) {
	q := cadel.Query{
		Keyword:    r.URL.Query().Get("keyword"),
		SensorType: r.URL.Query().Get("sensor"),
		Name:       r.URL.Query().Get("name"),
		Location:   r.URL.Query().Get("location"),
		Verb:       r.URL.Query().Get("verb"),
		Word:       r.URL.Query().Get("word"),
	}
	found := h.srv.Find(q)
	out := make([]deviceBody, 0, len(found))
	for _, d := range found {
		out = append(out, h.deviceBody(d))
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- rules ----

type ruleBody struct {
	ID     string `json:"id"`
	Owner  string `json:"owner"`
	Device string `json:"device"`
	Action string `json:"action"`
	Cond   string `json:"condition"`
	Source string `json:"source"`
}

type submitRequest struct {
	Source string `json:"source"`
	Owner  string `json:"owner"`
}

type submitResponse struct {
	Rule        *ruleBody `json:"rule,omitempty"`
	DefinedWord string    `json:"definedWord,omitempty"`
	Conflicts   []string  `json:"conflicts,omitempty"`
}

func ruleToBody(r *cadel.Rule) *ruleBody {
	return &ruleBody{
		ID:     r.ID,
		Owner:  r.Owner,
		Device: r.Device.Key(),
		Action: r.Action.String(),
		Cond:   r.Cond.String(),
		Source: r.Source,
	}
}

func (h *Handler) getRules(w http.ResponseWriter, _ *http.Request) {
	rules := h.srv.Rules()
	out := make([]*ruleBody, 0, len(rules))
	for _, r := range rules {
		out = append(out, ruleToBody(r))
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) postRules(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	res, err := h.srv.Submit(req.Source, req.Owner)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := submitResponse{DefinedWord: res.DefinedWord}
	if res.Rule != nil {
		resp.Rule = ruleToBody(res.Rule)
	}
	for _, c := range res.Conflicts {
		resp.Conflicts = append(resp.Conflicts, c.String())
	}
	status := http.StatusCreated
	if len(resp.Conflicts) > 0 {
		// Registered, but the client should prompt for a priority order.
		status = http.StatusAccepted
	}
	writeJSON(w, status, resp)
}

func (h *Handler) deleteRule(w http.ResponseWriter, r *http.Request) {
	if err := h.srv.RemoveRule(r.PathValue("id")); err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, "deleted")
}

// ---- priorities ----

type priorityRequest struct {
	Device   string   `json:"device"`
	Location string   `json:"location,omitempty"`
	Users    []string `json:"users"`
	Context  string   `json:"context,omitempty"`
}

func (h *Handler) postPriority(w http.ResponseWriter, r *http.Request) {
	var req priorityRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	ref := cadel.DeviceRef{Name: req.Device, Location: req.Location}
	if err := h.srv.SetPriority(ref, req.Users, req.Context); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, "ok")
}

// ---- log & export ----

type logBody struct {
	Time       time.Time `json:"time"`
	RuleID     string    `json:"ruleId"`
	Owner      string    `json:"owner"`
	Device     string    `json:"device"`
	Action     string    `json:"action"`
	Suppressed []string  `json:"suppressed,omitempty"`
	Error      string    `json:"error,omitempty"`
}

func (h *Handler) getLog(w http.ResponseWriter, _ *http.Request) {
	log := h.srv.Log()
	out := make([]logBody, 0, len(log))
	for _, f := range log {
		entry := logBody{
			Time:   f.Time,
			RuleID: f.Rule.ID,
			Owner:  f.Rule.Owner,
			Device: f.Rule.Device.Key(),
			Action: f.Rule.Action.String(),
		}
		for _, s := range f.Suppressed {
			entry.Suppressed = append(entry.Suppressed, s.ID)
		}
		if f.Err != nil {
			entry.Error = f.Err.Error()
		}
		out = append(out, entry)
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *Handler) getExport(w http.ResponseWriter, _ *http.Request) {
	data, err := h.srv.ExportRules()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}
