package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	cadel "repro"
	"repro/internal/home"
)

func newAPI(t *testing.T) (*home.Home, *httptest.Server) {
	t.Helper()
	network := cadel.NewNetwork()
	hm, err := home.New(network, home.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hm.Close() })
	srv, err := cadel.NewServer(network, cadel.WithClock(hm.Clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(srv))
	t.Cleanup(ts.Close)
	return hm, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var reader *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reader = bytes.NewReader(data)
	} else {
		reader = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reader)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestUsersEndpoint(t *testing.T) {
	_, ts := newAPI(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/api/users", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET users = %d: %s", resp.StatusCode, body)
	}
	var users []string
	if err := json.Unmarshal(body, &users); err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 {
		t.Errorf("users = %v", users)
	}

	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/api/users",
		map[string]any{"name": "emily", "favorites": []string{"roman holiday"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST user = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/api/users", map[string]any{"name": "emily"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate user = %d, want 409", resp.StatusCode)
	}
}

func TestDevicesAndLookupEndpoints(t *testing.T) {
	_, ts := newAPI(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/api/devices", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET devices = %d", resp.StatusCode)
	}
	var devices []map[string]any
	if err := json.Unmarshal(body, &devices); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 20 {
		t.Errorf("devices = %d, want 20", len(devices))
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/api/lookup?sensor=temperature&location=living+room", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET lookup = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &devices); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(devices))
	for _, d := range devices {
		names = append(names, d["name"].(string))
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "thermometer") || !strings.Contains(joined, "air conditioner") {
		t.Errorf("lookup = %s", joined)
	}
}

func TestRuleLifecycleOverHTTP(t *testing.T) {
	_, ts := newAPI(t)

	// Word definition.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/api/rules", map[string]string{
		"source": "Let's call the condition that temperature is higher than 26 degrees and humidity is higher than 65 percent hot and stuffy",
		"owner":  "tom",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST word = %d: %s", resp.StatusCode, body)
	}
	var sub struct {
		DefinedWord string `json:"definedWord"`
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.DefinedWord != "hot and stuffy" {
		t.Errorf("definedWord = %q", sub.DefinedWord)
	}

	// Rule using the word.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/api/rules", map[string]string{
		"source": "If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.",
		"owner":  "tom",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST rule = %d: %s", resp.StatusCode, body)
	}
	var created struct {
		Rule *struct {
			ID string `json:"id"`
		} `json:"rule"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.Rule == nil {
		t.Fatalf("bad response %s (%v)", body, err)
	}

	// Conflicting rule → 202 with conflicts.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/api/rules", map[string]string{
		"source": "If temperature is higher than 25 degrees, turn on the air conditioner with 23 degrees of temperature setting.",
		"owner":  "alan",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("conflicting POST = %d: %s", resp.StatusCode, body)
	}
	var conflicted struct {
		Conflicts []string `json:"conflicts"`
	}
	if err := json.Unmarshal(body, &conflicted); err != nil || len(conflicted.Conflicts) != 1 {
		t.Fatalf("conflicts = %v (%v)", conflicted.Conflicts, err)
	}

	// Priority setup.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/api/priority", map[string]any{
		"device":  "air conditioner",
		"users":   []string{"alan", "tom"},
		"context": "alan got home from work",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST priority = %d: %s", resp.StatusCode, body)
	}

	// Listing and deleting.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/api/rules", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("GET rules failed")
	}
	var rules []map[string]any
	if err := json.Unmarshal(body, &rules); err != nil || len(rules) != 2 {
		t.Fatalf("rules = %s", body)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/api/rules/"+created.Rule.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/api/rules/"+created.Rule.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double DELETE = %d, want 404", resp.StatusCode)
	}
}

func TestErrorMapping(t *testing.T) {
	_, ts := newAPI(t)
	tests := []struct {
		name   string
		source string
		owner  string
		status int
	}{
		{
			name:   "unknown user",
			source: "Turn on the tv.",
			owner:  "stranger",
			status: http.StatusNotFound,
		},
		{
			name:   "parse error",
			source: "zorble the frobnicator",
			owner:  "tom",
			status: http.StatusBadRequest,
		},
		{
			name:   "inconsistent",
			source: "If temperature is higher than 30 degrees and temperature is lower than 20 degrees, turn on the fan.",
			owner:  "tom",
			status: http.StatusUnprocessableEntity,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := doJSON(t, http.MethodPost, ts.URL+"/api/rules",
				map[string]string{"source": tt.source, "owner": tt.owner})
			if resp.StatusCode != tt.status {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, tt.status, body)
			}
		})
	}
}

func TestLogAndExportEndpoints(t *testing.T) {
	hm, ts := newAPI(t)
	if _, body := doJSON(t, http.MethodPost, ts.URL+"/api/rules", map[string]string{
		"source": "If tom is in the living room, turn on the floor lamp.",
		"owner":  "tom",
	}); len(body) == 0 {
		t.Fatal("empty submit response")
	}
	if err := hm.Arrive("tom", "living room", "return-home"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	var entries []map[string]any
	for time.Now().Before(deadline) {
		_, body := doJSON(t, http.MethodGet, ts.URL+"/api/log", nil)
		if err := json.Unmarshal(body, &entries); err == nil && len(entries) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(entries) == 0 {
		t.Fatal("no log entries after arrival")
	}
	if entries[0]["device"] != "floor lamp" {
		t.Errorf("log entry = %v", entries[0])
	}

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/api/export", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "floor lamp") {
		t.Errorf("export = %d %s", resp.StatusCode, body)
	}
}

func TestUnknownEndpoint(t *testing.T) {
	_, ts := newAPI(t)
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/api/nothing", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func ExampleNew() {
	fmt.Println("see TestRuleLifecycleOverHTTP for end-to-end usage")
	// Output: see TestRuleLifecycleOverHTTP for end-to-end usage
}
