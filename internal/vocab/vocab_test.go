package vocab

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	tests := []struct{ give, want string }{
		{"Hot And Stuffy", "hot and stuffy"},
		{"  hot   and  stuffy ", "hot and stuffy"},
		{"TURN ON", "turn on"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := Normalize(tt.give); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestAddLookupRemove(t *testing.T) {
	l := New()
	if err := l.Add(Entry{Phrase: "Half Lighting", Kind: KindConfWord}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	e, ok := l.Lookup(KindConfWord, "half lighting")
	if !ok {
		t.Fatal("Lookup failed after Add")
	}
	if e.Canon != "half lighting" {
		t.Errorf("Canon = %q, want defaulted phrase", e.Canon)
	}
	if err := l.Add(Entry{Phrase: "half  lighting", Kind: KindConfWord}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate Add error = %v, want ErrDuplicate", err)
	}
	// Same phrase under a different kind is fine.
	if err := l.Add(Entry{Phrase: "half lighting", Kind: KindCondWord}); err != nil {
		t.Errorf("same phrase different kind: %v", err)
	}
	if err := l.Remove(KindConfWord, "half lighting"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, ok := l.Lookup(KindConfWord, "half lighting"); ok {
		t.Error("Lookup succeeded after Remove")
	}
	// The cond-word entry must survive.
	if _, ok := l.Lookup(KindCondWord, "half lighting"); !ok {
		t.Error("Remove deleted entry of another kind")
	}
	if err := l.Remove(KindConfWord, "half lighting"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double Remove error = %v, want ErrNotFound", err)
	}
}

func TestAddEmpty(t *testing.T) {
	l := New()
	if err := l.Add(Entry{Phrase: "   ", Kind: KindVerb}); !errors.Is(err, ErrEmpty) {
		t.Errorf("Add empty error = %v, want ErrEmpty", err)
	}
}

func TestMatchLongestPrefersLongerPhrase(t *testing.T) {
	l := Default()
	toks := strings.Fields("at least 20 degrees")
	e, n, ok := l.MatchLongest(toks, KindState)
	if !ok {
		t.Fatal("no match for 'at least'")
	}
	if e.Phrase != "at least" || n != 2 {
		t.Errorf("matched %q (%d tokens), want 'at least' (2)", e.Phrase, n)
	}
	toks = strings.Fields("at the living room")
	e, n, ok = l.MatchLongest(toks, KindState)
	if !ok || e.Phrase != "at" || n != 1 {
		t.Errorf("matched %q/%d, want presence 'at'/1", e.Phrase, n)
	}
}

func TestMatchLongestKindFilter(t *testing.T) {
	l := Default()
	toks := strings.Fields("on air tonight")
	if e, _, ok := l.MatchLongest(toks, KindState); !ok || e.Canon != "on-air" {
		t.Errorf("state match = %+v ok=%v, want on-air", e, ok)
	}
	// With a non-state filter there is no match.
	if _, _, ok := l.MatchLongest(toks, KindPlace); ok {
		t.Error("place filter should not match 'on air'")
	}
	// No filter at all matches any kind.
	if _, n, ok := l.MatchLongest(toks); !ok || n == 0 {
		t.Error("unfiltered match should succeed")
	}
}

func TestMatchLongestEmpty(t *testing.T) {
	l := Default()
	if _, _, ok := l.MatchLongest(nil, KindVerb); ok {
		t.Error("empty token match should fail")
	}
}

func TestEntriesSorted(t *testing.T) {
	l := Default()
	entries := l.Entries(KindVerb)
	if len(entries) == 0 {
		t.Fatal("default lexicon has no verbs")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Phrase > entries[i].Phrase {
			t.Fatalf("entries not sorted: %q > %q", entries[i-1].Phrase, entries[i].Phrase)
		}
	}
}

func TestDefineUserWords(t *testing.T) {
	l := Default()
	if err := l.DefineCondWord("hot and stuffy",
		"humidity is higher than 60 percent and temperature is higher than 28 degrees", "tom"); err != nil {
		t.Fatalf("DefineCondWord: %v", err)
	}
	e, ok := l.Lookup(KindCondWord, "hot and stuffy")
	if !ok {
		t.Fatal("cond word not found")
	}
	if e.MetaValue(MetaOwner) != "tom" {
		t.Errorf("owner = %q, want tom", e.MetaValue(MetaOwner))
	}
	if !strings.Contains(e.MetaValue(MetaSource), "higher than 60") {
		t.Errorf("source not preserved: %q", e.MetaValue(MetaSource))
	}
	if err := l.DefineConfWord("half-lighting", "50 percent of brightness setting", "tom"); err != nil {
		t.Fatalf("DefineConfWord: %v", err)
	}
	if _, ok := l.Lookup(KindConfWord, "half-lighting"); !ok {
		t.Error("conf word not found")
	}
}

func TestDefaultLexiconContents(t *testing.T) {
	l := Default()
	tests := []struct {
		kind   Kind
		phrase string
		canon  string
	}{
		{KindVerb, "turn on", "turn-on"},
		{KindVerb, "switch off", "turn-off"},
		{KindState, "higher than", ""},
		{KindState, "turned on", "power=true"},
		{KindState, "dark", "dark=true"},
		{KindState, "unlocked", "locked=false"},
		{KindState, "returns home", "arrive-return-home"},
		{KindState, "got home from work", "arrive-home-from-work"},
		{KindState, "on air", "on-air"},
		{KindParameter, "temperature", "temperature"},
		{KindUnit, "degrees", "celsius"},
		{KindUnit, "hours", "second"},
		{KindPlace, "living room", "living room"},
		{KindPeriodName, "evening", "evening"},
		{KindPeriodName, "night", "night"},
		{KindWeekday, "monday", "monday"},
		{KindEvent, "baseball game", "baseball game"},
	}
	for _, tt := range tests {
		e, ok := l.Lookup(tt.kind, tt.phrase)
		if !ok {
			t.Errorf("default lexicon missing %v %q", tt.kind, tt.phrase)
			continue
		}
		if tt.canon != "" && e.Canon != tt.canon {
			t.Errorf("%q canon = %q, want %q", tt.phrase, e.Canon, tt.canon)
		}
	}
}

func TestDefaultPeriodMeta(t *testing.T) {
	l := Default()
	e, ok := l.Lookup(KindPeriodName, "evening")
	if !ok {
		t.Fatal("missing evening")
	}
	if e.MetaValue(MetaFromMin) != "1020" || e.MetaValue(MetaToMin) != "1320" {
		t.Errorf("evening = [%s,%s] minutes, want [1020,1320]",
			e.MetaValue(MetaFromMin), e.MetaValue(MetaToMin))
	}
	night, _ := l.Lookup(KindPeriodName, "night")
	if night.MetaValue(MetaToMin) != "1800" {
		t.Errorf("night end = %s, want 1800 (06:00 next day)", night.MetaValue(MetaToMin))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := Default()
	if err := l.DefineCondWord("hot and stuffy", "temperature is higher than 28 degrees", "tom"); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(l)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	restored := New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for _, kind := range []Kind{KindVerb, KindState, KindUnit, KindPlace, KindCondWord} {
		if got, want := len(restored.Entries(kind)), len(l.Entries(kind)); got != want {
			t.Errorf("kind %v: %d entries after round trip, want %d", kind, got, want)
		}
	}
	if _, ok := restored.Lookup(KindCondWord, "hot and stuffy"); !ok {
		t.Error("user word lost in round trip")
	}
	// Matching still works (firstWord index rebuilt).
	if _, n, ok := restored.MatchLongest(strings.Fields("hot and stuffy today"), KindCondWord); !ok || n != 3 {
		t.Error("MatchLongest broken after round trip")
	}
}

func TestKindString(t *testing.T) {
	if KindVerb.String() != "verb" || KindCondWord.String() != "cond-word" {
		t.Error("Kind.String misnamed")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include number")
	}
}

func TestConcurrentAccess(t *testing.T) {
	l := Default()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, _, _ = l.MatchLongest([]string{"turn", "on"}, KindVerb)
			_ = l.Entries(KindState)
		}
	}()
	for i := 0; i < 200; i++ {
		name := "word" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		_ = l.DefineCondWord(name, "x", "t")
		_ = l.Remove(KindCondWord, name)
	}
	<-done
}
