// Package vocab holds the CADEL lexicon: the multi-word phrase tables for
// verbs, states, parameters, units, places, periods and the user-defined
// condition/configuration words created with CondDef / ConfDef commands.
//
// The paper's rule description support module lets users retrieve sensors and
// devices by keyword, sensor type or user-defined word, and lets each user
// coin new words ("hot and stuffy", "half-lighting") that stand for compound
// contexts or device configurations. The lexicon is the shared dictionary
// that both the parser (phrase recognition) and the lookup service (word →
// sensor mapping) consult.
package vocab

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies lexicon entries.
type Kind int

// Lexicon entry kinds.
const (
	KindVerb Kind = iota + 1
	KindState
	KindParameter
	KindUnit
	KindPlace
	KindPerson
	KindDevice
	KindEvent
	KindCondWord
	KindConfWord
	KindPeriodName
	KindWeekday
)

var kindNames = map[Kind]string{
	KindVerb:       "verb",
	KindState:      "state",
	KindParameter:  "parameter",
	KindUnit:       "unit",
	KindPlace:      "place",
	KindPerson:     "person",
	KindDevice:     "device",
	KindEvent:      "event",
	KindCondWord:   "cond-word",
	KindConfWord:   "conf-word",
	KindPeriodName: "period",
	KindWeekday:    "weekday",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// StateKind classifies how a state phrase is interpreted when compiled.
type StateKind string

// State phrase interpretations.
const (
	StateBool     StateKind = "bool"     // "turned on", "dark", "unlocked"
	StateCompare  StateKind = "compare"  // "is higher than 28 degrees"
	StatePresence StateKind = "presence" // "is at the living room"
	StateArrival  StateKind = "arrival"  // "returns home", "got home from work"
	StateOnAir    StateKind = "onair"    // "is on air"
)

// Meta keys used by entries.
const (
	MetaStateKind = "state-kind" // StateKind value for KindState
	MetaVar       = "var"        // state variable / parameter canonical variable
	MetaBool      = "bool"       // "true"/"false" for StateBool
	MetaOp        = "op"         // gt/ge/lt/le/eq for StateCompare
	MetaEvent     = "event"      // arrival event name for StateArrival
	MetaUnitCanon = "unit"       // canonical unit for KindUnit and KindParameter
	MetaScale     = "scale"      // multiplier to canonical unit (e.g. hours → seconds)
	MetaFromMin   = "from-min"   // period name start, minutes since midnight
	MetaToMin     = "to-min"     // period name end, minutes since midnight
	MetaSource    = "source"     // original CADEL text for user-defined words
	MetaOwner     = "owner"      // user who defined the word
	MetaDay       = "day"        // weekday number 0=Sunday
)

// Entry is a single lexicon item. Phrase is the lowercase, single-spaced
// surface form; Canon is the canonical identifier used by the compiler
// (defaults to Phrase).
type Entry struct {
	Phrase string            `json:"phrase"`
	Kind   Kind              `json:"kind"`
	Canon  string            `json:"canon"`
	Meta   map[string]string `json:"meta,omitempty"`
}

func (e Entry) tokens() []string {
	return strings.Fields(e.Phrase)
}

// MetaValue returns the value for a meta key, empty when absent.
func (e Entry) MetaValue(key string) string {
	return e.Meta[key]
}

// Errors reported by the lexicon.
var (
	ErrDuplicate = errors.New("vocab: word already defined")
	ErrNotFound  = errors.New("vocab: word not found")
	ErrEmpty     = errors.New("vocab: empty phrase")
)

// Lexicon is a concurrency-safe dictionary of phrases. The zero value is not
// usable; construct with New or Default.
type Lexicon struct {
	mu        sync.RWMutex
	byKind    map[Kind]map[string]Entry
	firstWord map[string][]Entry // sorted by token count, longest first
}

// New returns an empty lexicon.
func New() *Lexicon {
	return &Lexicon{
		byKind:    make(map[Kind]map[string]Entry),
		firstWord: make(map[string][]Entry),
	}
}

// Normalize lowercases and single-spaces a phrase.
func Normalize(phrase string) string {
	return strings.Join(strings.Fields(strings.ToLower(phrase)), " ")
}

// Add inserts an entry. It fails with ErrDuplicate if the same phrase is
// already present under the same kind.
func (l *Lexicon) Add(e Entry) error {
	e.Phrase = Normalize(e.Phrase)
	if e.Phrase == "" {
		return ErrEmpty
	}
	if e.Canon == "" {
		e.Canon = e.Phrase
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	km := l.byKind[e.Kind]
	if km == nil {
		km = make(map[string]Entry)
		l.byKind[e.Kind] = km
	}
	if _, ok := km[e.Phrase]; ok {
		return fmt.Errorf("%w: %q (%v)", ErrDuplicate, e.Phrase, e.Kind)
	}
	km[e.Phrase] = e
	l.insertFirstWord(e)
	return nil
}

// MustAdd is Add for static tables; it panics on error and is used only while
// building the default lexicon.
func (l *Lexicon) MustAdd(e Entry) {
	if err := l.Add(e); err != nil {
		panic(err)
	}
}

func (l *Lexicon) insertFirstWord(e Entry) {
	toks := e.tokens()
	head := toks[0]
	list := append(l.firstWord[head], e)
	sort.SliceStable(list, func(i, j int) bool {
		return len(list[i].tokens()) > len(list[j].tokens())
	})
	l.firstWord[head] = list
}

// Remove deletes a phrase of the given kind.
func (l *Lexicon) Remove(kind Kind, phrase string) error {
	phrase = Normalize(phrase)
	l.mu.Lock()
	defer l.mu.Unlock()
	km := l.byKind[kind]
	if _, ok := km[phrase]; !ok {
		return fmt.Errorf("%w: %q (%v)", ErrNotFound, phrase, kind)
	}
	delete(km, phrase)
	head := strings.Fields(phrase)[0]
	list := l.firstWord[head]
	for i, e := range list {
		if e.Kind == kind && e.Phrase == phrase {
			l.firstWord[head] = append(list[:i:i], list[i+1:]...)
			break
		}
	}
	return nil
}

// Lookup returns the entry for an exact phrase of the given kind.
func (l *Lexicon) Lookup(kind Kind, phrase string) (Entry, bool) {
	phrase = Normalize(phrase)
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.byKind[kind][phrase]
	return e, ok
}

// MatchLongest finds the longest entry of one of the given kinds whose phrase
// equals a prefix of tokens. It returns the entry and the number of tokens
// consumed.
func (l *Lexicon) MatchLongest(tokens []string, kinds ...Kind) (Entry, int, bool) {
	if len(tokens) == 0 {
		return Entry{}, 0, false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	kindSet := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		kindSet[k] = true
	}
	for _, e := range l.firstWord[tokens[0]] {
		if len(kinds) > 0 && !kindSet[e.Kind] {
			continue
		}
		etoks := e.tokens()
		if len(etoks) > len(tokens) {
			continue
		}
		match := true
		for i, w := range etoks {
			if tokens[i] != w {
				match = false
				break
			}
		}
		if match {
			return e, len(etoks), true
		}
	}
	return Entry{}, 0, false
}

// Entries returns all entries of a kind, sorted by phrase.
func (l *Lexicon) Entries(kind Kind) []Entry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Entry, 0, len(l.byKind[kind]))
	for _, e := range l.byKind[kind] {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phrase < out[j].Phrase })
	return out
}

// DefineCondWord registers a user-defined condition word (CondDef). The
// source is the CADEL condition expression text the word stands for.
func (l *Lexicon) DefineCondWord(name, source, owner string) error {
	return l.Add(Entry{
		Phrase: name,
		Kind:   KindCondWord,
		Meta:   map[string]string{MetaSource: source, MetaOwner: owner},
	})
}

// DefineConfWord registers a user-defined configuration word (ConfDef).
func (l *Lexicon) DefineConfWord(name, source, owner string) error {
	return l.Add(Entry{
		Phrase: name,
		Kind:   KindConfWord,
		Meta:   map[string]string{MetaSource: source, MetaOwner: owner},
	})
}

// lexiconJSON is the serialized form.
type lexiconJSON struct {
	Entries []Entry `json:"entries"`
}

// MarshalJSON serializes all entries.
func (l *Lexicon) MarshalJSON() ([]byte, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var doc lexiconJSON
	kinds := make([]Kind, 0, len(l.byKind))
	for k := range l.byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		phrases := make([]string, 0, len(l.byKind[k]))
		for p := range l.byKind[k] {
			phrases = append(phrases, p)
		}
		sort.Strings(phrases)
		for _, p := range phrases {
			doc.Entries = append(doc.Entries, l.byKind[k][p])
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON replaces the lexicon content with the serialized entries.
func (l *Lexicon) UnmarshalJSON(data []byte) error {
	var doc lexiconJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	l.mu.Lock()
	l.byKind = make(map[Kind]map[string]Entry)
	l.firstWord = make(map[string][]Entry)
	l.mu.Unlock()
	for _, e := range doc.Entries {
		if err := l.Add(e); err != nil {
			return err
		}
	}
	return nil
}
