package vocab

import "strconv"

// Default builds the English CADEL lexicon with the verbs, states,
// parameters, units, places and period names used throughout the paper's
// examples (Sect. 3.1, 4.2 and Fig. 1). Other natural languages can be
// supported by building a different table, as the paper notes.
func Default() *Lexicon {
	l := New()

	verbs := []struct{ phrase, canon string }{
		{"turn on", "turn-on"},
		{"switch on", "turn-on"},
		{"turn off", "turn-off"},
		{"switch off", "turn-off"},
		{"record", "record"},
		{"play", "play"},
		{"play back", "play"},
		{"stop", "stop"},
		{"pause", "pause"},
		{"set", "set"},
		{"adjust", "set"},
		{"lock", "lock"},
		{"unlock", "unlock"},
		{"open", "open"},
		{"close", "close"},
		{"dim", "dim"},
		{"brighten", "brighten"},
		{"mute", "mute"},
		{"show", "show"},
		{"notify", "notify"},
	}
	for _, v := range verbs {
		l.MustAdd(Entry{Phrase: v.phrase, Kind: KindVerb, Canon: v.canon})
	}

	boolState := func(phrase, variable string, val bool) Entry {
		return Entry{
			Phrase: phrase,
			Kind:   KindState,
			Canon:  variable + "=" + strconv.FormatBool(val),
			Meta: map[string]string{
				MetaStateKind: string(StateBool),
				MetaVar:       variable,
				MetaBool:      strconv.FormatBool(val),
			},
		}
	}
	compareState := func(phrase, op string) Entry {
		return Entry{
			Phrase: phrase,
			Kind:   KindState,
			Canon:  "cmp-" + op + "-" + Normalize(phrase),
			Meta: map[string]string{
				MetaStateKind: string(StateCompare),
				MetaOp:        op,
			},
		}
	}
	arrivalState := func(phrase, event string) Entry {
		return Entry{
			Phrase: phrase,
			Kind:   KindState,
			Canon:  "arrive-" + event,
			Meta: map[string]string{
				MetaStateKind: string(StateArrival),
				MetaEvent:     event,
			},
		}
	}

	states := []Entry{
		boolState("turned on", "power", true),
		boolState("on", "power", true),
		boolState("turned off", "power", false),
		boolState("off", "power", false),
		boolState("dark", "dark", true),
		boolState("bright", "dark", false),
		boolState("locked", "locked", true),
		boolState("unlocked", "locked", false),
		boolState("open", "open", true),
		boolState("opened", "open", true),
		boolState("closed", "open", false),
		boolState("empty", "occupied", false),
		boolState("occupied", "occupied", true),
		boolState("playing", "playing", true),
		boolState("recording", "recording", true),

		compareState("higher than", "gt"),
		compareState("greater than", "gt"),
		compareState("more than", "gt"),
		compareState("hotter than", "gt"),
		compareState("warmer than", "gt"),
		compareState("over", "gt"),
		compareState("above", "gt"),
		compareState("at least", "ge"),
		compareState("lower than", "lt"),
		compareState("less than", "lt"),
		compareState("colder than", "lt"),
		compareState("cooler than", "lt"),
		compareState("under", "lt"),
		compareState("below", "lt"),
		compareState("at most", "le"),
		compareState("exactly", "eq"),

		{
			Phrase: "at", Kind: KindState, Canon: "presence-at",
			Meta: map[string]string{MetaStateKind: string(StatePresence)},
		},
		{
			Phrase: "in", Kind: KindState, Canon: "presence-in",
			Meta: map[string]string{MetaStateKind: string(StatePresence)},
		},

		arrivalState("comes back", "come-back"),
		arrivalState("returns home", "return-home"),
		arrivalState("return home", "return-home"),
		arrivalState("comes home", "return-home"),
		arrivalState("got home from work", "home-from-work"),
		arrivalState("gets home from work", "home-from-work"),
		arrivalState("got home from shopping", "home-from-shopping"),
		arrivalState("gets home from shopping", "home-from-shopping"),
		arrivalState("goes out", "go-out"),
		arrivalState("leaves home", "go-out"),

		{
			Phrase: "on air", Kind: KindState, Canon: "on-air",
			Meta: map[string]string{MetaStateKind: string(StateOnAir)},
		},
	}
	for _, s := range states {
		l.MustAdd(s)
	}

	params := []struct{ phrase, variable, unit string }{
		{"temperature", "temperature", "celsius"},
		{"humidity", "humidity", "percent"},
		{"channel", "channel", "channel"},
		{"volume", "volume", "percent"},
		{"brightness", "brightness", "percent"},
		{"mode", "mode", "word"},
		{"illuminance", "illuminance", "lux"},
		{"timer", "timer", "second"},
	}
	for _, p := range params {
		l.MustAdd(Entry{
			Phrase: p.phrase, Kind: KindParameter, Canon: p.variable,
			Meta: map[string]string{MetaVar: p.variable, MetaUnitCanon: p.unit},
		})
	}

	units := []struct {
		phrase, canon string
		scale         float64
	}{
		{"degrees", "celsius", 1},
		{"degree", "celsius", 1},
		{"degrees celsius", "celsius", 1},
		{"degrees fahrenheit", "fahrenheit", 1},
		{"percent", "percent", 1},
		{"lux", "lux", 1},
		{"seconds", "second", 1},
		{"second", "second", 1},
		{"minutes", "second", 60},
		{"minute", "second", 60},
		{"hours", "second", 3600},
		{"hour", "second", 3600},
	}
	for _, u := range units {
		l.MustAdd(Entry{
			Phrase: u.phrase, Kind: KindUnit, Canon: u.canon,
			Meta: map[string]string{
				MetaUnitCanon: u.canon,
				MetaScale:     strconv.FormatFloat(u.scale, 'g', -1, 64),
			},
		})
	}

	places := []string{
		"living room", "kitchen", "bedroom", "bathroom", "hall", "entrance",
		"garage", "garden", "second floor", "first floor", "home", "study",
	}
	for _, p := range places {
		l.MustAdd(Entry{Phrase: p, Kind: KindPlace, Canon: Normalize(p)})
	}

	periods := []struct {
		phrase   string
		from, to int // minutes since midnight; to may wrap past midnight
	}{
		{"morning", 6 * 60, 11 * 60},
		{"noon", 11 * 60, 13 * 60},
		{"afternoon", 13 * 60, 17 * 60},
		{"evening", 17 * 60, 22 * 60},
		{"night", 22 * 60, 30 * 60}, // 22:00-06:00, wraps midnight
		{"midnight", 0, 1 * 60},
		{"daytime", 9 * 60, 17 * 60},
	}
	for _, p := range periods {
		l.MustAdd(Entry{
			Phrase: p.phrase, Kind: KindPeriodName, Canon: p.phrase,
			Meta: map[string]string{
				MetaFromMin: strconv.Itoa(p.from),
				MetaToMin:   strconv.Itoa(p.to),
			},
		})
	}

	weekdays := []struct {
		phrase string
		day    int
	}{
		{"sunday", 0}, {"monday", 1}, {"tuesday", 2}, {"wednesday", 3},
		{"thursday", 4}, {"friday", 5}, {"saturday", 6},
	}
	for _, w := range weekdays {
		l.MustAdd(Entry{
			Phrase: w.phrase, Kind: KindWeekday, Canon: w.phrase,
			Meta: map[string]string{MetaDay: strconv.Itoa(w.day)},
		})
	}

	events := []string{"baseball game", "movie", "news", "weather forecast", "drama"}
	for _, e := range events {
		l.MustAdd(Entry{Phrase: e, Kind: KindEvent, Canon: Normalize(e)})
	}

	return l
}
