package simplex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/interval"
)

func mustFeasible(t *testing.T, cs []Constraint) Result {
	t.Helper()
	res, err := Feasible(cs)
	if err != nil {
		t.Fatalf("Feasible(%v) error: %v", cs, err)
	}
	return res
}

func checkWitness(t *testing.T, cs []Constraint, point map[string]float64) {
	t.Helper()
	for _, c := range cs {
		lhs := 0.0
		for name, coef := range c.Coeffs {
			lhs += coef * point[name]
		}
		ok := false
		switch c.Rel {
		case LE:
			ok = lhs <= c.RHS+1e-6
		case GE:
			ok = lhs >= c.RHS-1e-6
		case LT:
			ok = lhs < c.RHS+1e-9
		case GT:
			ok = lhs > c.RHS-1e-9
		case EQ:
			ok = math.Abs(lhs-c.RHS) <= 1e-6
		}
		if !ok {
			t.Errorf("witness %v violates %v (lhs=%v)", point, c, lhs)
		}
	}
}

func TestFeasibleEmptySystem(t *testing.T) {
	res := mustFeasible(t, nil)
	if !res.Feasible {
		t.Error("empty system must be feasible")
	}
}

func TestFeasibleSimpleBounds(t *testing.T) {
	tests := []struct {
		name string
		cs   []Constraint
		want bool
	}{
		{
			name: "paper hot-and-stuffy pair", // temp>28 ∧ temp>26: consistent
			cs:   []Constraint{Bound("temp", GT, 28), Bound("temp", GT, 26)},
			want: true,
		},
		{
			name: "contradictory bounds",
			cs:   []Constraint{Bound("temp", GT, 28), Bound("temp", LT, 25)},
			want: false,
		},
		{
			name: "strict same point",
			cs:   []Constraint{Bound("x", GT, 5), Bound("x", LT, 5)},
			want: false,
		},
		{
			name: "loose same point",
			cs:   []Constraint{Bound("x", GE, 5), Bound("x", LE, 5)},
			want: true,
		},
		{
			name: "strict above loose below",
			cs:   []Constraint{Bound("x", GT, 5), Bound("x", LE, 5)},
			want: false,
		},
		{
			name: "equality consistent",
			cs:   []Constraint{Bound("x", EQ, 3), Bound("x", LE, 4)},
			want: true,
		},
		{
			name: "equality inconsistent",
			cs:   []Constraint{Bound("x", EQ, 3), Bound("x", GE, 4)},
			want: false,
		},
		{
			name: "negative values",
			cs:   []Constraint{Bound("x", LE, -5), Bound("x", GE, -10)},
			want: true,
		},
		{
			name: "negative infeasible",
			cs:   []Constraint{Bound("x", LE, -10), Bound("x", GE, -5)},
			want: false,
		},
		{
			name: "four inequalities two vars (paper E2b shape)",
			cs: []Constraint{
				Bound("temp", GT, 28), Bound("humid", GT, 60),
				Bound("temp", GT, 25), Bound("humid", GT, 55),
			},
			want: true,
		},
		{
			name: "four inequalities disjoint bands",
			cs: []Constraint{
				Bound("temp", GE, 28), Bound("temp", LE, 30),
				Bound("temp", GE, 31), Bound("temp", LE, 35),
			},
			want: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := mustFeasible(t, tt.cs)
			if res.Feasible != tt.want {
				t.Fatalf("Feasible = %v, want %v", res.Feasible, tt.want)
			}
			if res.Feasible {
				checkWitness(t, tt.cs, res.Point)
			}
		})
	}
}

func TestFeasibleMultiVariableCoupling(t *testing.T) {
	// x + y <= 10, x >= 4, y >= 4: feasible (x=4,y=4).
	cs := []Constraint{
		{Coeffs: map[string]float64{"x": 1, "y": 1}, Rel: LE, RHS: 10},
		Bound("x", GE, 4),
		Bound("y", GE, 4),
	}
	res := mustFeasible(t, cs)
	if !res.Feasible {
		t.Fatal("coupled system should be feasible")
	}
	checkWitness(t, cs, res.Point)

	// x + y <= 10, x >= 6, y >= 6: infeasible.
	cs[1] = Bound("x", GE, 6)
	cs[2] = Bound("y", GE, 6)
	if res := mustFeasible(t, cs); res.Feasible {
		t.Fatal("x+y<=10, x>=6, y>=6 should be infeasible")
	}
}

func TestFeasibleStrictCoupling(t *testing.T) {
	// x + y < 10 with x > 5 and y > 5 is infeasible even though the
	// non-strict relaxation touches at x+y=10.
	cs := []Constraint{
		{Coeffs: map[string]float64{"x": 1, "y": 1}, Rel: LT, RHS: 10},
		Bound("x", GT, 5),
		Bound("y", GT, 5),
	}
	if res := mustFeasible(t, cs); res.Feasible {
		t.Fatal("strict coupled system should be infeasible")
	}
	// Loosen one bound and it becomes feasible.
	cs[1] = Bound("x", GT, 3)
	res := mustFeasible(t, cs)
	if !res.Feasible {
		t.Fatal("loosened system should be feasible")
	}
	checkWitness(t, cs, res.Point)
}

func TestFeasibleEqualitySystem(t *testing.T) {
	// x + y == 10, x - y == 2  → x=6, y=4.
	cs := []Constraint{
		{Coeffs: map[string]float64{"x": 1, "y": 1}, Rel: EQ, RHS: 10},
		{Coeffs: map[string]float64{"x": 1, "y": -1}, Rel: EQ, RHS: 2},
	}
	res := mustFeasible(t, cs)
	if !res.Feasible {
		t.Fatal("linear equalities should be feasible")
	}
	if math.Abs(res.Point["x"]-6) > 1e-6 || math.Abs(res.Point["y"]-4) > 1e-6 {
		t.Errorf("witness = %v, want x=6,y=4", res.Point)
	}
}

func TestFeasibleRejectsBadInput(t *testing.T) {
	if _, err := Feasible([]Constraint{{Coeffs: map[string]float64{"x": math.NaN()}, Rel: LE, RHS: 0}}); err == nil {
		t.Error("NaN coefficient should error")
	}
	if _, err := Feasible([]Constraint{{Coeffs: map[string]float64{"x": 1}, Rel: Relation(99), RHS: 0}}); err == nil {
		t.Error("bad relation should error")
	}
	if _, err := Feasible([]Constraint{{Coeffs: map[string]float64{"x": 1}, Rel: LE, RHS: math.Inf(1)}}); err == nil {
		t.Error("infinite RHS should error")
	}
}

func TestMaximize(t *testing.T) {
	// max x+y st x<=4, y<=3 → 7.
	val, point, st := Maximize(
		map[string]float64{"x": 1, "y": 1},
		[]Constraint{Bound("x", LE, 4), Bound("y", LE, 3), Bound("x", GE, 0), Bound("y", GE, 0)},
	)
	if st != StatusOptimal {
		t.Fatalf("status = %v, want optimal", st)
	}
	if math.Abs(val-7) > 1e-6 {
		t.Errorf("optimum = %v, want 7", val)
	}
	if math.Abs(point["x"]-4) > 1e-6 || math.Abs(point["y"]-3) > 1e-6 {
		t.Errorf("point = %v, want x=4,y=3", point)
	}
}

func TestMaximizeUnbounded(t *testing.T) {
	_, _, st := Maximize(map[string]float64{"x": 1}, []Constraint{Bound("x", GE, 0)})
	if st != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", st)
	}
}

func TestMaximizeInfeasible(t *testing.T) {
	_, _, st := Maximize(map[string]float64{"x": 1},
		[]Constraint{Bound("x", LE, 0), Bound("x", GE, 1)})
	if st != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestMaximizeNegativeOptimum(t *testing.T) {
	// max x st x <= -5 (x free) → -5.
	val, point, st := Maximize(map[string]float64{"x": 1}, []Constraint{Bound("x", LE, -5)})
	if st != StatusOptimal {
		t.Fatalf("status = %v, want optimal", st)
	}
	if math.Abs(val+5) > 1e-6 {
		t.Errorf("optimum = %v, want -5", val)
	}
	if math.Abs(point["x"]+5) > 1e-6 {
		t.Errorf("point = %v, want x=-5", point)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Coeffs: map[string]float64{"temp": 1, "humid": -2}, Rel: LE, RHS: 10}
	if got, want := c.String(), "-2*humid + temp <= 10"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := Bound("x", GT, 28).String(), "x > 28"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// relToIval converts a single-variable constraint to an interval for the
// oracle comparison.
func relToIval(rel Relation, rhs float64) interval.Interval {
	switch rel {
	case LE:
		return interval.AtMost(rhs)
	case GE:
		return interval.AtLeast(rhs)
	case LT:
		return interval.LessThan(rhs)
	case GT:
		return interval.GreaterThan(rhs)
	case EQ:
		return interval.Point(rhs)
	}
	return interval.Full()
}

// TestQuickAgreesWithIntervalOracle cross-checks the simplex solver against
// interval propagation on random systems of single-variable bounds, where
// interval intersection is exact.
func TestQuickAgreesWithIntervalOracle(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	rels := []Relation{LE, GE, LT, GT, EQ}
	vars := []string{"a", "b", "c"}
	f := func() bool {
		n := 1 + r.Intn(6)
		cs := make([]Constraint, 0, n)
		box := interval.NewBox()
		for i := 0; i < n; i++ {
			name := vars[r.Intn(len(vars))]
			rel := rels[r.Intn(len(rels))]
			rhs := float64(r.Intn(21) - 10)
			cs = append(cs, Bound(name, rel, rhs))
			box.Constrain(name, relToIval(rel, rhs))
		}
		res, err := Feasible(cs)
		if err != nil {
			return false
		}
		return res.Feasible == box.Feasible()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotone verifies that adding a constraint never turns an
// infeasible system feasible.
func TestQuickMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	rels := []Relation{LE, GE, LT, GT}
	f := func() bool {
		n := 1 + r.Intn(5)
		cs := make([]Constraint, 0, n+1)
		for i := 0; i < n; i++ {
			coeffs := map[string]float64{
				"x": float64(r.Intn(5) - 2),
				"y": float64(r.Intn(5) - 2),
			}
			cs = append(cs, Constraint{Coeffs: coeffs, Rel: rels[r.Intn(len(rels))], RHS: float64(r.Intn(21) - 10)})
		}
		before, err := Feasible(cs)
		if err != nil {
			return false
		}
		extra := Bound("x", rels[r.Intn(len(rels))], float64(r.Intn(21)-10))
		after, err := Feasible(append(cs, extra))
		if err != nil {
			return false
		}
		if !before.Feasible && after.Feasible {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWitnessSatisfies verifies every reported witness satisfies its
// system.
func TestQuickWitnessSatisfies(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	rels := []Relation{LE, GE, LT, GT, EQ}
	f := func() bool {
		n := 1 + r.Intn(5)
		cs := make([]Constraint, 0, n)
		for i := 0; i < n; i++ {
			coeffs := map[string]float64{"x": float64(r.Intn(3) + 1)}
			if r.Intn(2) == 0 {
				coeffs["y"] = float64(r.Intn(5) - 2)
			}
			cs = append(cs, Constraint{Coeffs: coeffs, Rel: rels[r.Intn(len(rels))], RHS: float64(r.Intn(21) - 10)})
		}
		res, err := Feasible(cs)
		if err != nil || !res.Feasible {
			return err == nil
		}
		for _, c := range cs {
			lhs := 0.0
			for name, coef := range c.Coeffs {
				lhs += coef * res.Point[name]
			}
			switch c.Rel {
			case LE:
				if lhs > c.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					return false
				}
			case LT:
				if lhs >= c.RHS {
					return false
				}
			case GT:
				if lhs <= c.RHS {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
