// Package simplex decides feasibility of systems of linear inequalities and
// solves small linear programs with the two-phase simplex method.
//
// The paper's prototype detects rule conflicts by "solving the satisfiability
// of given linear expressions using the Simplex Method" (a C library in the
// original). This package is that substrate: the conflict checker conjoins
// the linear inequalities extracted from two rule conditions and asks whether
// the system has a feasible point.
//
// Strict inequalities (e.g. "temperature > 28") are handled exactly: the
// solver maximizes a shared slack t added to every strict constraint and the
// system is strictly feasible iff the optimum t is positive.
package simplex

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Relation is the comparison operator of a linear constraint.
type Relation int

// Supported constraint relations.
const (
	LE Relation = iota + 1 // <=
	GE                     // >=
	LT                     // <  (strict)
	GT                     // >  (strict)
	EQ                     // ==
)

// String returns the mathematical symbol of the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case LT:
		return "<"
	case GT:
		return ">"
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is a linear constraint sum(Coeffs[v]*v) REL RHS over named
// variables.
type Constraint struct {
	Coeffs map[string]float64
	Rel    Relation
	RHS    float64
}

// Bound is a convenience constructor for a single-variable constraint
// `coeff*name rel rhs` with coeff 1.
func Bound(name string, rel Relation, rhs float64) Constraint {
	return Constraint{Coeffs: map[string]float64{name: 1}, Rel: rel, RHS: rhs}
}

// String renders the constraint, variables sorted for determinism.
func (c Constraint) String() string {
	names := make([]string, 0, len(c.Coeffs))
	for name := range c.Coeffs {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, name := range names {
		coef := c.Coeffs[name]
		if i > 0 {
			if coef >= 0 {
				sb.WriteString(" + ")
			} else {
				sb.WriteString(" - ")
				coef = -coef
			}
		} else if coef < 0 {
			sb.WriteString("-")
			coef = -coef
		}
		if coef == 1 {
			sb.WriteString(name)
		} else {
			fmt.Fprintf(&sb, "%g*%s", coef, name)
		}
	}
	if len(names) == 0 {
		sb.WriteString("0")
	}
	fmt.Fprintf(&sb, " %s %g", c.Rel, c.RHS)
	return sb.String()
}

// Result reports the outcome of a feasibility query.
type Result struct {
	// Feasible is true when the system admits at least one point.
	Feasible bool
	// Point is a witness assignment when Feasible is true.
	Point map[string]float64
}

// ErrBadConstraint reports a structurally invalid constraint.
var ErrBadConstraint = errors.New("simplex: invalid constraint")

const (
	eps       = 1e-9
	strictGap = 1e-7 // minimum slack for strict inequalities to count as satisfied
)

// Feasible decides whether the conjunction of the constraints has a solution,
// treating strict relations exactly. An empty system is trivially feasible.
func Feasible(cs []Constraint) (Result, error) {
	if len(cs) == 0 {
		return Result{Feasible: true, Point: map[string]float64{}}, nil
	}
	for _, c := range cs {
		if err := validate(c); err != nil {
			return Result{}, err
		}
	}

	vars := collectVars(cs)
	// Standard form: every original free variable x becomes xPos-xNeg with
	// xPos,xNeg >= 0. Strict constraints additionally receive +t (for <) or
	// -t (for >) where t >= 0 is shared; the LP maximizes t.
	hasStrict := false
	for _, c := range cs {
		if c.Rel == LT || c.Rel == GT {
			hasStrict = true
			break
		}
	}

	nv := 2*len(vars) + 1 // +1 for t even when unused; harmless
	var rows [][]float64
	var rhs []float64
	addRow := func(coeffs map[string]float64, strictSign float64, b float64) {
		row := make([]float64, nv)
		for name, coef := range coeffs {
			idx := indexOf(vars, name)
			row[2*idx] = coef
			row[2*idx+1] = -coef
		}
		row[nv-1] = strictSign
		rows = append(rows, row)
		rhs = append(rhs, b)
	}

	for _, c := range cs {
		switch c.Rel {
		case LE:
			addRow(c.Coeffs, 0, c.RHS)
		case LT:
			addRow(c.Coeffs, 1, c.RHS)
		case GE:
			addRow(negate(c.Coeffs), 0, -c.RHS)
		case GT:
			addRow(negate(c.Coeffs), 1, -c.RHS)
		case EQ:
			addRow(c.Coeffs, 0, c.RHS)
			addRow(negate(c.Coeffs), 0, -c.RHS)
		}
	}
	// Cap t so the phase-2 objective is bounded.
	tCap := make([]float64, nv)
	tCap[nv-1] = 1
	rows = append(rows, tCap)
	rhs = append(rhs, 1)

	obj := make([]float64, nv)
	obj[nv-1] = 1 // maximize t

	value, solution, status := solveStandard(rows, rhs, obj)
	switch status {
	case statusInfeasible:
		return Result{Feasible: false}, nil
	case statusUnbounded:
		// Cannot happen: t is capped at 1 and is the only objective term.
		return Result{}, errors.New("simplex: internal: bounded objective reported unbounded")
	}

	if hasStrict && value < strictGap {
		return Result{Feasible: false}, nil
	}
	point := make(map[string]float64, len(vars))
	for i, name := range vars {
		point[name] = solution[2*i] - solution[2*i+1]
	}
	return Result{Feasible: true, Point: point}, nil
}

// Maximize solves max obj·x subject to the constraints (variables free).
// It returns the optimum value and a maximizing point.
func Maximize(obj map[string]float64, cs []Constraint) (float64, map[string]float64, Status) {
	for _, c := range cs {
		if err := validate(c); err != nil {
			return 0, nil, StatusInfeasible
		}
	}
	all := cs
	vars := collectVars(all)
	for name := range obj {
		if indexOf(vars, name) < 0 {
			vars = append(vars, name)
		}
	}
	sort.Strings(vars)

	nv := 2 * len(vars)
	var rows [][]float64
	var rhs []float64
	addRow := func(coeffs map[string]float64, b float64) {
		row := make([]float64, nv)
		for name, coef := range coeffs {
			idx := indexOf(vars, name)
			row[2*idx] = coef
			row[2*idx+1] = -coef
		}
		rows = append(rows, row)
		rhs = append(rhs, b)
	}
	for _, c := range cs {
		switch c.Rel {
		case LE, LT:
			addRow(c.Coeffs, c.RHS)
		case GE, GT:
			addRow(negate(c.Coeffs), -c.RHS)
		case EQ:
			addRow(c.Coeffs, c.RHS)
			addRow(negate(c.Coeffs), -c.RHS)
		}
	}
	objRow := make([]float64, nv)
	for name, coef := range obj {
		idx := indexOf(vars, name)
		objRow[2*idx] = coef
		objRow[2*idx+1] = -coef
	}
	value, solution, st := solveStandard(rows, rhs, objRow)
	switch st {
	case statusInfeasible:
		return 0, nil, StatusInfeasible
	case statusUnbounded:
		return 0, nil, StatusUnbounded
	}
	point := make(map[string]float64, len(vars))
	for i, name := range vars {
		point[name] = solution[2*i] - solution[2*i+1]
	}
	return value, point, StatusOptimal
}

// Status classifies the outcome of an optimization.
type Status int

// Optimization outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

func validate(c Constraint) error {
	switch c.Rel {
	case LE, GE, LT, GT, EQ:
	default:
		return fmt.Errorf("%w: relation %v", ErrBadConstraint, c.Rel)
	}
	for name, coef := range c.Coeffs {
		if math.IsNaN(coef) || math.IsInf(coef, 0) {
			return fmt.Errorf("%w: coefficient of %q is %v", ErrBadConstraint, name, coef)
		}
	}
	if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
		return fmt.Errorf("%w: right-hand side %v", ErrBadConstraint, c.RHS)
	}
	return nil
}

func negate(coeffs map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(coeffs))
	for k, v := range coeffs {
		out[k] = -v
	}
	return out
}

func collectVars(cs []Constraint) []string {
	seen := make(map[string]bool)
	var vars []string
	for _, c := range cs {
		for name := range c.Coeffs {
			if !seen[name] {
				seen[name] = true
				vars = append(vars, name)
			}
		}
	}
	sort.Strings(vars)
	return vars
}

func indexOf(vars []string, name string) int {
	i := sort.SearchStrings(vars, name)
	if i < len(vars) && vars[i] == name {
		return i
	}
	return -1
}

type internalStatus int

const (
	statusOptimal internalStatus = iota
	statusInfeasible
	statusUnbounded
)

// solveStandard maximizes obj·x subject to rows·x <= rhs, x >= 0 using the
// two-phase simplex method with Bland's anti-cycling rule on a dense tableau.
// It returns the optimal value and the solution vector.
func solveStandard(rows [][]float64, rhs []float64, obj []float64) (float64, []float64, internalStatus) {
	m := len(rows)
	if m == 0 {
		return 0, make([]float64, len(obj)), statusOptimal
	}
	n := len(rows[0])

	// Tableau layout: columns [0..n) structural, [n..n+m) slack,
	// [n+m..n+2m) artificial (allocated lazily per row), last column RHS.
	// We allocate artificials for every row for simplicity; unneeded ones
	// start non-basic at zero and never enter with a favourable cost.
	total := n + 2*m
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, total+1)
	}
	basis := make([]int, m)

	needPhase1 := false
	for i := 0; i < m; i++ {
		copy(t[i], rows[i])
		b := rhs[i]
		if b < 0 {
			for j := 0; j < n; j++ {
				t[i][j] = -t[i][j]
			}
			b = -b
			t[i][n+i] = -1 // slack becomes surplus
			t[i][n+m+i] = 1
			basis[i] = n + m + i
			needPhase1 = true
		} else {
			t[i][n+i] = 1
			basis[i] = n + i
		}
		t[i][total] = b
	}

	if needPhase1 {
		// Phase-1 objective: minimize sum of artificials == maximize -sum.
		// In row form (z - obj·x = 0) every artificial column carries +1;
		// basic artificials are then priced out by subtracting their rows.
		w := t[m]
		for j := range w {
			w[j] = 0
		}
		for j := n + m; j < total; j++ {
			w[j] = 1
		}
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				for j := 0; j <= total; j++ {
					w[j] -= t[i][j]
				}
			}
		}
		if st := pivotLoop(t, basis, total); st == statusUnbounded {
			return 0, nil, statusInfeasible
		}
		if t[m][total] < -eps {
			return 0, nil, statusInfeasible
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basis[i] < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros: redundant constraint; leave it.
				continue
			}
		}
	}

	// Erase artificial columns so they can never re-enter the basis. Any
	// artificial still basic sits on an all-zero redundant row with value 0
	// and is inert from here on.
	for i := 0; i <= m; i++ {
		for j := n + m; j < total; j++ {
			t[i][j] = 0
		}
	}

	// Phase-2 objective row: z - obj·x = 0 expressed in current basis.
	z := t[m]
	for j := range z {
		z[j] = 0
	}
	for j := 0; j < n; j++ {
		z[j] = -obj[j]
	}
	// Express objective in terms of the basis (price out basic columns).
	for i := 0; i < m; i++ {
		col := basis[i]
		if col >= n+m {
			continue // inert artificial on a redundant row
		}
		coef := z[col]
		if coef == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			z[j] -= coef * t[i][j]
		}
		z[col] = 0
	}

	if st := pivotLoop(t, basis, total); st == statusUnbounded {
		return 0, nil, statusUnbounded
	}

	solution := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			solution[basis[i]] = t[i][total]
		}
	}
	return t[m][total], solution, statusOptimal
}

// pivotLoop runs simplex iterations on tableau t (last row is the objective)
// until optimality or unboundedness, using Bland's rule.
func pivotLoop(t [][]float64, basis []int, total int) internalStatus {
	m := len(basis)
	for iter := 0; ; iter++ {
		if iter > 10000*(m+4) {
			// Bland's rule guarantees termination; this is a defensive cap.
			return statusOptimal
		}
		// Entering column: smallest index with negative reduced cost (Bland).
		enter := -1
		for j := 0; j < total; j++ {
			if t[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return statusOptimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return statusUnbounded
		}
		pivot(t, basis, leave, enter, total)
	}
}

func pivot(t [][]float64, basis []int, row, col, total int) {
	p := t[row][col]
	for j := 0; j <= total; j++ {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		factor := t[i][col]
		if factor == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			t[i][j] -= factor * t[row][j]
		}
		t[i][col] = 0
	}
	basis[row] = col
}
