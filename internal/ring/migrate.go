package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// Source-side migration coordinator: seal → drain → snapshot → transfer →
// (target replays) → ack → release. Every step before the ack is abortable —
// on failure the home is unsealed and keeps serving here. The ack is the
// commit point: once the target confirms it holds all N transfer lines, the
// source tombstones and forgets the home.

const (
	// drainRounds bounds the quiesce loop. Each round runs a full barrier;
	// dispatch-feedback chains shorten by at least one hop per round, so a
	// home that needs this many rounds is a rule cycle, not a backlog.
	drainRounds = 64
	// transferAttempts bounds transfer retries against one target. The whole
	// transfer is idempotent per migration id, so retrying after a timeout,
	// reset or 500 is always safe.
	transferAttempts = 6
	// transferBackoff is the base delay between transfer attempts, growing
	// linearly (base, 2×base, ...) — migration is operator-scale, so a
	// simple ramp beats tuned jitter.
	transferBackoff = 25 * time.Millisecond
)

// ErrMigrationInFlight reports a migration rejected because another
// migration of the same home is already running on this node (HTTP: 409).
var ErrMigrationInFlight = errors.New("ring: migration already in flight")

// Migrate moves one resident home to the target node and releases it here.
// On any error the home is unsealed and keeps serving on this node; the only
// non-retryable window is after the target's ack, where release failures
// leave the home sealed (served by the target via the ownership override,
// never by both). At most one migration per home runs at a time: a manual
// /ring/migrate racing a background rebalance gets ErrMigrationInFlight
// instead of a second concurrent transfer to a possibly different target.
func (n *Node) Migrate(ctx context.Context, home, target string) error {
	m := &n.hub.MetricsRegistry().Migration
	if target == "" || target == n.self {
		return fmt.Errorf("ring: cannot migrate %q to %q", home, target)
	}
	n.mu.Lock()
	if _, busy := n.migrating[home]; busy {
		n.mu.Unlock()
		return fmt.Errorf("ring: %q: %w", home, ErrMigrationInFlight)
	}
	n.migrating[home] = struct{}{}
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.migrating, home)
		n.mu.Unlock()
	}()
	m.Started.Inc()
	start := time.Now()
	if err := n.hub.SealHome(home); err != nil {
		m.Failed.Inc()
		return err
	}
	abort := func(err error) error {
		n.hub.UnsealHome(home)
		m.Failed.Inc()
		return err
	}

	// Drain: quiesce until the home's mailbox is empty. New external posts
	// bounce off the seal (503 + Retry-After); dispatch-feedback events keep
	// flowing via PostEventFeedback and settle within a few rounds.
	drained := false
	for i := 0; i < drainRounds; i++ {
		if err := n.hub.Quiesce(); err != nil {
			return abort(err)
		}
		if n.hub.Backlog(home) == 0 {
			drained = true
			break
		}
	}
	if !drained {
		return abort(fmt.Errorf("ring: %q still has backlog after %d drain rounds", home, drainRounds))
	}

	exp, err := n.hub.ExportHome(home)
	if err != nil {
		return abort(err)
	}
	body, lines, err := encodeTransfer(exp)
	if err != nil {
		return abort(err)
	}
	mig := fmt.Sprintf("%s/%s/%d.%d", n.self, home, n.nonce, n.migSeq.Add(1))

	ack, err := n.postTransfer(ctx, target, home, mig, body, m)
	if err != nil {
		return abort(err)
	}
	if ack.Lines != lines {
		// The target acked a different stream length than we sent — it holds
		// some other migration's state. Abort; the next attempt gets a fresh
		// migration id and wholesale-replaces whatever is there.
		return abort(fmt.Errorf("ring: target acked %d lines, sent %d", ack.Lines, lines))
	}

	// Commit point: the target holds the complete home. The ownership
	// override goes in FIRST: ReleaseHome deletes the home and lifts the
	// seal, and if this node is still the hash owner, a post landing in that
	// window would otherwise pass the lifted seal, fall through Owner() to
	// the ring (self) and resurrect an empty home after the release
	// tombstone. With the override installed, routing redirects to the
	// target throughout the release. Release must not unseal on failure —
	// the home now lives on the target, and a sealed zombie copy here only
	// bounces requests until a retry or restart finishes the forget.
	n.setOverride(home, target)
	if err := n.hub.ReleaseHome(home); err != nil {
		m.Failed.Inc()
		return fmt.Errorf("ring: target holds %q but source release failed: %w", home, err)
	}
	m.Completed.Inc()
	m.DurationNs.Observe(uint64(time.Since(start)))
	return nil
}

// Rebalance migrates every resident home whose hash owner is another member.
// Overrides are deliberately ignored here: rebalancing moves homes TOWARD
// hash ownership, which is what survives a restart (overrides are
// in-memory). Each home migrates independently; the first error is reported
// after every home has been attempted.
func (n *Node) Rebalance(ctx context.Context) error {
	homes, err := n.hub.Homes()
	if err != nil {
		return err
	}
	var firstErr error
	for _, home := range homes {
		owner := n.ring.Owner(home)
		if owner == "" || owner == n.self {
			// Hash-owned here: drop any stale override so routing follows
			// the ring again.
			n.setOverride(home, "")
			continue
		}
		if err := n.Migrate(ctx, home, owner); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// encodeTransfer frames a home export as a replay stream: the durable
// records with transfer sequence numbers 1..N, one migration-state record
// carrying the volatile engine state, and a replay-end trailer whose Epoch
// is the line count — the target rejects any stream cut short by a dying
// source before applying a single record.
func encodeTransfer(exp *fleet.HomeExport) ([]byte, uint64, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var seq uint64
	for _, rec := range exp.Records {
		seq++
		rec.Seq = seq
		if err := enc.Encode(rec); err != nil {
			return nil, 0, err
		}
	}
	if exp.State != nil {
		raw, err := json.Marshal(exp.State)
		if err != nil {
			return nil, 0, err
		}
		seq++
		if err := enc.Encode(fleet.Record{Home: exp.Home, Kind: fleet.RecordMigrationState, Seq: seq, State: raw}); err != nil {
			return nil, 0, err
		}
	}
	if err := enc.Encode(fleet.Record{Kind: fleet.RecordReplayEnd, Epoch: seq}); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), seq, nil
}

// postTransfer delivers the framed stream to the target, retrying timeouts,
// resets and 5xx answers. Building the request from a bytes.Reader gives it
// a GetBody, so fault-injecting transports can rewind and replay the body.
// Duplicated deliveries are harmless: the target's idempotency mark turns
// the duplicate into an ack of the already-applied import.
func (n *Node) postTransfer(ctx context.Context, target, home, mig string, body []byte, m *obs.MigrationMetrics) (*transferAck, error) {
	url := "http://" + target + "/ring/transfer/" + home + "?migration=" + neturl.QueryEscape(mig)
	var lastErr error
	for attempt := 0; attempt < transferAttempts; attempt++ {
		if attempt > 0 {
			m.TransferRetries.Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(time.Duration(attempt) * transferBackoff):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := n.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("ring: transfer to %s: %s: %s", target, resp.Status, bytes.TrimSpace(respBody))
			if resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable {
				continue // target-side fault: retry, the import is idempotent
			}
			return nil, lastErr // 4xx: our stream is bad, retrying won't help
		}
		ack := &transferAck{}
		if err := json.Unmarshal(respBody, ack); err != nil {
			lastErr = err
			continue
		}
		if ack.Home != home || ack.Migration != mig {
			lastErr = fmt.Errorf("ring: transfer ack for %q/%q, want %q/%q", ack.Home, ack.Migration, home, mig)
			continue
		}
		return ack, nil
	}
	return nil, fmt.Errorf("ring: transfer of %q to %s failed after %d attempts: %w", home, target, transferAttempts, lastErr)
}
