package ring

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fleet"
)

// TestMigrationConvergesUnderFaults is the acceptance matrix: migrations run
// under a fault-injecting transport (timeouts, resets before and after
// delivery, injected 500s, duplicated deliveries, injected latency) while
// the target is killed and restarted at each protocol step, across three
// seeds. Whatever happens mid-protocol, the fleet must converge to exactly
// the state of a never-migrated single-hub twin: every admitted event
// evaluated once, every fired action dispatched once, record-for-record.
func TestMigrationConvergesUnderFaults(t *testing.T) {
	steps := []string{"", "received", "pre-import", "post-import", "pre-ack"}
	for _, seed := range []int64{1, 2, 3} {
		for _, step := range steps {
			label := step
			if label == "" {
				label = "no-kill"
			}
			seed, step := seed, step
			t.Run(fmt.Sprintf("seed%d/%s", seed, label), func(t *testing.T) {
				runMigrationFaultCase(t, seed, step)
			})
		}
	}
}

func runMigrationFaultCase(t *testing.T, seed int64, killStep string) {
	homes := []string{"h-alpha", "h-beta", "h-gamma", "h-delta"}
	migrated := map[string]bool{"h-alpha": true, "h-beta": true}

	// The twin: one hub, no ring, no store, same clock — the ground truth
	// every fault case must land on.
	twinTap := &tap{}
	twin, err := fleet.NewHub(
		fleet.WithShards(1),
		fleet.WithClock(testClock()),
		fleet.WithDispatcher(twinTap.dispatch),
		fleet.WithLogLimit(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = twin.Close() }()

	fleetTap := &tap{}
	a, b := newTestNode(t, fleetTap), newTestNode(t, fleetTap)
	ft := faultinject.NewTransport(faultinject.Config{
		Seed:         seed,
		TimeoutP:     0.10,
		ResetBeforeP: 0.10,
		ResetAfterP:  0.15,
		HTTP500P:     0.20,
		DuplicateP:   0.30,
		DelayP:       0.50,
		Delay:        2 * time.Millisecond,
	}, nil)
	a.client = &http.Client{Transport: ft, Timeout: 10 * time.Second}
	peers := []string{a.addr, b.addr}
	a.start(peers)
	b.start(peers)

	// Phase 1: all homes live on A; twin sees the identical stream.
	for _, home := range homes {
		seedHome(t, a.hub(), home)
		seedHome(t, twin, home)
		for _, temp := range []string{"31", "20", "31"} {
			postTemp(t, a.hub(), home, temp)
			postTemp(t, twin, home, temp)
		}
	}

	// Arm the kill: the first time the target reaches killStep, its process
	// dies (hub and node replaced, volatile maps lost) and the in-flight
	// transfer answers 500.
	var killed atomic.Bool
	if killStep != "" {
		fn := func(step string) error {
			if step == killStep && killed.CompareAndSwap(false, true) {
				b.restart()
				return errors.New("faultinject: killed at " + step)
			}
			return nil
		}
		b.hook.Store(&fn)
	}

	// Migrate under fire. A Migrate that exhausts its transport retries
	// aborts cleanly (home unsealed, still serving on A) — the coordinator
	// simply tries again, as a supervisor would.
	for home := range migrated {
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if err = a.node().Migrate(context.Background(), home, b.addr); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("migrate %s never converged: %v", home, err)
		}
	}
	if killStep != "" && !killed.Load() {
		t.Fatal("kill step never reached — the matrix case tested nothing")
	}
	if killStep == "" {
		// Non-vacuous fault check: the transport must actually have injected
		// something, or the no-kill rows of the matrix test a clean network.
		st := ft.Stats()
		if st.Timeouts+st.ResetsBefore+st.ResetsAfter+st.HTTP500s+st.Duplicates+st.Delays == 0 {
			t.Fatalf("seed %d injected no faults: %+v — raise probabilities", seed, st)
		}
	}

	// Phase 2: migrated homes take events on B, the rest stay on A; the twin
	// sees everything.
	for _, home := range homes {
		owner := a
		if migrated[home] {
			owner = b
		}
		for _, temp := range []string{"20", "31"} {
			postTemp(t, owner.hub(), home, temp)
			postTemp(t, twin, home, temp)
		}
	}

	// Exactly-once, fleet-wide: the merged dispatch stream of both nodes
	// (across kills and retries) equals the twin's.
	if got, want := fleetTap.sorted(), twinTap.sorted(); !reflect.DeepEqual(got, want) {
		t.Errorf("dispatch streams diverged:\n fleet: %v\n twin:  %v", got, want)
	}

	// Record-for-record: each home's fired log on its current owner matches
	// the twin's — order, timestamps, suppressions and all.
	for _, home := range homes {
		owner := a
		if migrated[home] {
			owner = b
		}
		if got, want := firedStrings(t, owner.hub(), home), firedStrings(t, twin, home); !reflect.DeepEqual(got, want) {
			t.Errorf("%s log diverged:\n owner: %v\n twin:  %v", home, got, want)
		}
	}

	// Residency: migrated homes left A and live on B.
	for _, home := range homes {
		if migrated[home] {
			if hasHome(t, a.hub(), home) {
				t.Errorf("%s still resident on source", home)
			}
			if !hasHome(t, b.hub(), home) {
				t.Errorf("%s not resident on target", home)
			}
			// The source redirects for the home it handed away (override —
			// the hash may still say A, but A knows better).
			resp, err := noRedirect.Get(a.srv.URL + "/fleet/homes/" + home + "/log")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusTemporaryRedirect {
				t.Errorf("source answered %d for migrated %s, want 307", resp.StatusCode, home)
			}
		} else if !hasHome(t, a.hub(), home) {
			t.Errorf("%s missing from source", home)
		}
	}

	// No sealed leftovers on either side, whatever path the protocol took.
	if n := a.hub().SealedHomes(); n != 0 {
		t.Errorf("source holds %d sealed homes after convergence", n)
	}
	if n := b.hub().SealedHomes(); n != 0 {
		t.Errorf("target holds %d sealed homes after convergence", n)
	}
}

// TestSourceRestartAfterRelease: a source killed after a completed migration
// must not resurrect the home it handed away (the release tombstone), must
// rehydrate its remaining homes without re-dispatching anything (quiet boot
// replay), and must keep serving them.
func TestSourceRestartAfterRelease(t *testing.T) {
	fleetTap := &tap{}
	a, b := newTestNode(t, fleetTap), newTestNode(t, fleetTap)
	peers := []string{a.addr, b.addr}
	a.start(peers)
	b.start(peers)

	for _, home := range []string{"h-move", "h-stay"} {
		seedHome(t, a.hub(), home)
		postTemp(t, a.hub(), home, "31")
	}
	if err := a.node().Migrate(context.Background(), "h-move", b.addr); err != nil {
		t.Fatal(err)
	}

	before := len(fleetTap.sorted())
	a.restart()
	if got := len(fleetTap.sorted()); got != before {
		t.Errorf("boot replay dispatched %d extra actions — replay must be quiet", got-before)
	}
	if hasHome(t, a.hub(), "h-move") {
		t.Error("released home resurrected after source restart")
	}
	if !hasHome(t, a.hub(), "h-stay") {
		t.Fatal("resident home lost in restart")
	}
	// The rehydrated home still evaluates and fires on fresh events.
	postTemp(t, a.hub(), "h-stay", "20")
	postTemp(t, a.hub(), "h-stay", "31")
	if got := len(fleetTap.sorted()); got != before+1 {
		t.Errorf("rehydrated home fired %d times on a fresh flip, want 1", got-before)
	}
}

// TestSetMembersRebalanceOutlivesRequest: the rebalance triggered by POST
// /ring/members runs in the background after the handler returns — net/http
// cancels the request context at that point, and a rebalance bound to it
// would fail every transfer with "context canceled" while the new membership
// (already applied) redirects the home to an owner that never received it.
func TestSetMembersRebalanceOutlivesRequest(t *testing.T) {
	tp := &tap{}
	a, b := newTestNode(t, tp), newTestNode(t, tp)
	a.start([]string{a.addr})
	b.start([]string{a.addr, b.addr})

	// Pick a home the two-member ring places on b.
	two := New(a.addr, b.addr)
	home := ""
	for i := 0; i < 100000 && home == ""; i++ {
		h := fmt.Sprintf("home-%d", i)
		if two.Owner(h) == b.addr {
			home = h
		}
	}
	if home == "" {
		t.Fatal("no home hashing to b found")
	}
	seedHome(t, a.hub(), home)
	postTemp(t, a.hub(), home, "31")

	resp, body := post(t, a.srv.URL+"/ring/members", `{"members":["`+a.addr+`","`+b.addr+`"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ring/members: %d %s", resp.StatusCode, body)
	}

	// The home must land on its new hash owner and leave the old one.
	deadline := time.Now().Add(10 * time.Second)
	for !hasHome(t, b.hub(), home) || hasHome(t, a.hub(), home) {
		if time.Now().After(deadline) {
			t.Fatalf("%s never rebalanced to its new hash owner", home)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the migrated home still fires on fresh events where it now lives.
	before := len(tp.sorted())
	postTemp(t, b.hub(), home, "20")
	postTemp(t, b.hub(), home, "31")
	if got := len(tp.sorted()); got != before+1 {
		t.Errorf("rebalanced home fired %d times on a fresh flip, want 1", got-before)
	}
}

// TestConcurrentMigrationRejected: a second migration of a home whose
// migration is already in flight is rejected (409 through HTTP) instead of
// running a second full seal/export/transfer to a possibly different target.
func TestConcurrentMigrationRejected(t *testing.T) {
	tp := &tap{}
	a, b := newTestNode(t, tp), newTestNode(t, tp)
	peers := []string{a.addr, b.addr}
	a.start(peers)
	b.start(peers)
	seedHome(t, a.hub(), "h1")
	postTemp(t, a.hub(), "h1", "31")

	// Stall the first migration inside the target's transfer handler so the
	// racing calls below deterministically overlap it.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	fn := func(step string) error {
		if step == "received" {
			once.Do(func() {
				close(entered)
				<-release
			})
		}
		return nil
	}
	b.hook.Store(&fn)

	done := make(chan error, 1)
	go func() { done <- a.node().Migrate(context.Background(), "h1", b.addr) }()
	<-entered

	if err := a.node().Migrate(context.Background(), "h1", b.addr); !errors.Is(err, ErrMigrationInFlight) {
		t.Errorf("concurrent Migrate = %v, want ErrMigrationInFlight", err)
	}
	resp, body := post(t, a.srv.URL+"/ring/migrate", `{"home":"h1","target":"`+b.addr+`"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent POST /ring/migrate: %d %s, want 409", resp.StatusCode, body)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("stalled migration failed: %v", err)
	}
	if !hasHome(t, b.hub(), "h1") || hasHome(t, a.hub(), "h1") {
		t.Error("home did not end up solely on the target")
	}
	// The guard clears once the migration finishes: a later migrate of the
	// (now absent) home fails with ErrNoHome, not ErrMigrationInFlight.
	if err := a.node().Migrate(context.Background(), "h1", b.addr); !errors.Is(err, fleet.ErrNoHome) {
		t.Errorf("post-completion Migrate = %v, want ErrNoHome", err)
	}
}

// TestTransferStreamCutShort: a transfer stream missing its replay-end
// trailer (the source died mid-send) is rejected wholesale — the target
// applies none of it.
func TestTransferStreamCutShort(t *testing.T) {
	tp := &tap{}
	b := newTestNode(t, tp)
	b.start([]string{b.addr})

	// A real export, truncated before the trailer.
	src := newTestNode(t, tp)
	src.start([]string{src.addr})
	seedHome(t, src.hub(), "h1")
	exp, err := src.hub().ExportHome("h1")
	if err != nil {
		t.Fatal(err)
	}
	body, _, err := encodeTransfer(exp)
	if err != nil {
		t.Fatal(err)
	}
	cut := body[:len(body)/2]

	resp, err := http.Post(b.srv.URL+"/ring/transfer/h1?migration=m1", "application/x-ndjson",
		bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated stream: %d, want 400", resp.StatusCode)
	}
	if hasHome(t, b.hub(), "h1") {
		t.Error("target materialized a home from a truncated stream")
	}
}
