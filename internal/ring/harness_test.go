package ring

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/ingest"
)

// The harness runs real ring nodes: each testNode is a hub + Node behind a
// stable loopback address (an httptest server proxying to a swappable Node
// pointer), so a "kill" replaces the hub and Node — losing every volatile
// map, as a real process death would — while the address and the on-disk
// store survive.

var testEpoch = time.Date(2005, 3, 7, 18, 0, 0, 0, time.UTC)

func testClock() func() time.Time { return func() time.Time { return testEpoch } }

const hotRule = "If temperature is higher than 28 degrees, turn on the air conditioner."

// tap records every dispatched action. One tap shared by several hubs merges
// their dispatch streams — the exactly-once comparison surface.
type tap struct {
	mu      sync.Mutex
	entries []string
}

func (tp *tap) dispatch(home string, ref core.DeviceRef, action core.Action) error {
	tp.mu.Lock()
	tp.entries = append(tp.entries, home+"|"+ref.Key()+"|"+action.Verb)
	tp.mu.Unlock()
	return nil
}

func (tp *tap) sorted() []string {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	out := append([]string(nil), tp.entries...)
	sort.Strings(out)
	return out
}

type testNode struct {
	t    *testing.T
	dir  string
	tap  *tap
	addr string
	srv  *httptest.Server

	client *http.Client // transfer client for this node's Migrate calls
	peers  []string
	shards int

	cur  atomic.Pointer[Node]
	hook atomic.Pointer[func(step string) error]
}

// newTestNode allocates the stable address; call start(peers) once both
// nodes' addresses are known.
func newTestNode(t *testing.T, tp *tap) *testNode {
	t.Helper()
	tn := &testNode{t: t, dir: t.TempDir(), tap: tp, shards: 2}
	tn.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := tn.cur.Load()
		if n == nil {
			http.Error(w, "node down", http.StatusServiceUnavailable)
			return
		}
		n.ServeHTTP(w, r)
	}))
	t.Cleanup(tn.srv.Close)
	tn.addr = strings.TrimPrefix(tn.srv.URL, "http://")
	return tn
}

func (tn *testNode) start(peers []string) {
	tn.t.Helper()
	tn.peers = peers
	st, err := fleet.OpenFileStore(tn.dir)
	if err != nil {
		tn.t.Fatal(err)
	}
	hub, err := fleet.NewHub(
		fleet.WithShards(tn.shards),
		fleet.WithClock(testClock()),
		fleet.WithDispatcher(tn.tap.dispatch),
		fleet.WithLogLimit(0),
		fleet.WithStore(st),
	)
	if err != nil {
		tn.t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{
		Self:    tn.addr,
		Hub:     hub,
		Handler: fleet.NewHTTPHandler(hub, fleet.WithEventSink(fleet.NewEventSink(hub, ingest.Limits{}))),
		Peers:   peers,
		TransferHook: func(step string) error {
			if fn := tn.hook.Load(); fn != nil {
				return (*fn)(step)
			}
			return nil
		},
		Client: tn.client,
	})
	if err != nil {
		tn.t.Fatal(err)
	}
	tn.cur.Store(node)
	tn.t.Cleanup(func() { _ = hub.Close() })
}

func (tn *testNode) node() *Node     { return tn.cur.Load() }
func (tn *testNode) hub() *fleet.Hub { return tn.cur.Load().hub }

// restart simulates a process kill and supervisor restart: the hub dies
// (volatile engine state, override map, import marks — all gone), then a
// fresh hub rehydrates from the same store directory behind the same
// address.
func (tn *testNode) restart() {
	old := tn.cur.Swap(nil)
	if old != nil {
		_ = old.hub.Close()
	}
	tn.start(tn.peers)
}

// seedHome registers the standard user and hot rule on a hub.
func seedHome(t *testing.T, h *fleet.Hub, home string) {
	t.Helper()
	if err := h.RegisterUser(home, "tom"); err != nil {
		t.Fatalf("%s: register: %v", home, err)
	}
	if _, err := h.Submit(home, hotRule, "tom"); err != nil {
		t.Fatalf("%s: submit: %v", home, err)
	}
}

// postTemp posts one synchronous thermometer event.
func postTemp(t *testing.T, h *fleet.Hub, home, temp string) {
	t.Helper()
	if err := h.PostEventSync(home, device.TypeThermometer, "thermometer", "living room",
		map[string]string{"temperature": temp}); err != nil {
		t.Fatalf("%s: post %s: %v", home, temp, err)
	}
}

// firedStrings renders a home's fired log for record-for-record comparison.
func firedStrings(t *testing.T, h *fleet.Hub, home string) []string {
	t.Helper()
	log, err := h.Log(home)
	if err != nil {
		t.Fatalf("%s: log: %v", home, err)
	}
	out := make([]string, len(log))
	for i, f := range log {
		out[i] = f.String()
	}
	return out
}

func hasHome(t *testing.T, h *fleet.Hub, home string) bool {
	t.Helper()
	homes, err := h.Homes()
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range homes {
		if got == home {
			return true
		}
	}
	return false
}
