package ring

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/logserver"
)

// Node is one ring member: a hub plus its fleet HTTP handler, wrapped with
// ownership routing, the migration transfer endpoint, liveness/readiness
// probes and per-node ring gauges on /metrics.
type Node struct {
	self  string // advertised address (host:port), also the ring member id
	hub   *fleet.Hub
	inner http.Handler
	ring  *Ring

	mu sync.RWMutex
	// overrides layers explicit ownership over the ring's hash default:
	// after a migration the source points the home at the target (so
	// requests redirect before membership catches up) and the target points
	// it at itself (so it serves a home it does not hash-own). In-memory
	// only: a restarted node falls back to hash ownership, which is why
	// rebalancing migrates homes TOWARD their hash owner.
	overrides map[string]string
	// imports marks completed transfers by migration id: a duplicated or
	// retried delivery of an already-applied transfer is acked idempotently
	// instead of re-imported.
	imports map[string]importMark
	// migrating holds homes with a source-side migration in flight on this
	// node. SealHome alone is idempotent, so without this a manual
	// /ring/migrate racing a background rebalance could run two full
	// migrations of the same home to different targets; the second caller is
	// rejected with ErrMigrationInFlight instead.
	migrating map[string]struct{}

	// transferMu serializes imports so a duplicated delivery racing the
	// original cannot interleave two wholesale-replaces of the same home.
	transferMu sync.Mutex

	draining atomic.Bool

	// transferHook, when set (tests), runs at each step of the target-side
	// transfer. Returning an error turns the step into a 500 — the
	// fault-injection point for "the target died at step X".
	transferHook func(step string) error

	// client posts transfers to peers; tests swap in fault-injecting
	// transports here.
	client *http.Client

	migSeq atomic.Uint64
	// nonce distinguishes migration ids minted by different incarnations of
	// the same address (a restarted source resets migSeq; the nonce keeps a
	// replayed old transfer from matching a new migration's idempotency
	// mark).
	nonce int64
}

type importMark struct {
	migration string
	lines     uint64
}

// NodeConfig configures NewNode.
type NodeConfig struct {
	// Self is the node's advertised address (host:port); it must be listed
	// in Peers.
	Self string
	// Hub is the node's hub.
	Hub *fleet.Hub
	// Handler is the fleet HTTP handler served for owned homes (typically
	// fleet.NewHTTPHandler(Hub, ...)).
	Handler http.Handler
	// Peers is the initial ring membership, Self included.
	Peers []string
	// TransferHook is a test hook run at each target-side transfer step
	// ("received", "pre-import", "post-import", "pre-ack"); an error fails
	// the step with a 500.
	TransferHook func(step string) error
	// Client posts migration transfers to peers. Defaults to a dedicated
	// client that does not follow redirects (transfer endpoints never
	// redirect; fleet requests proxied by tests should).
	Client *http.Client
}

// NewNode builds a ring node around a hub and its HTTP handler.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("ring: node needs a self address")
	}
	if cfg.Hub == nil || cfg.Handler == nil {
		return nil, fmt.Errorf("ring: node needs a hub and a handler")
	}
	peers := cfg.Peers
	if len(peers) == 0 {
		peers = []string{cfg.Self}
	}
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("ring: self %q not in peers %v", cfg.Self, peers)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Node{
		self:         cfg.Self,
		hub:          cfg.Hub,
		inner:        cfg.Handler,
		ring:         New(peers...),
		overrides:    make(map[string]string),
		imports:      make(map[string]importMark),
		migrating:    make(map[string]struct{}),
		transferHook: cfg.TransferHook,
		client:       client,
		nonce:        time.Now().UnixNano(),
	}, nil
}

// Self returns the node's advertised address.
func (n *Node) Self() string { return n.self }

// Ring returns the node's ring view.
func (n *Node) Ring() *Ring { return n.ring }

// Hub returns the node's hub.
func (n *Node) Hub() *fleet.Hub { return n.hub }

// SetDraining flips the readiness probe: a draining node answers 503 on
// /readyz so supervisors and load balancers stop sending it new work while
// in-flight requests finish.
func (n *Node) SetDraining(d bool) { n.draining.Store(d) }

// Owner returns who currently owns home: an explicit override when one
// exists (migration just moved it), the ring's hash owner otherwise.
func (n *Node) Owner(home string) string {
	n.mu.RLock()
	if o, ok := n.overrides[home]; ok {
		n.mu.RUnlock()
		return o
	}
	n.mu.RUnlock()
	return n.ring.Owner(home)
}

func (n *Node) setOverride(home, owner string) {
	n.mu.Lock()
	if owner == "" {
		delete(n.overrides, home)
	} else {
		n.overrides[home] = owner
	}
	n.mu.Unlock()
}

func (n *Node) hook(step string) error {
	if n.transferHook == nil {
		return nil
	}
	return n.transferHook(step)
}

// ServeHTTP routes per-home fleet requests by ownership (pass-through when
// this node owns the home, 307 + owner address otherwise) and serves the
// ring's own endpoints:
//
//	GET  /healthz                    liveness (process is up)
//	GET  /readyz                     readiness (not draining, store healthy)
//	GET  /ring                       membership + ownership summary
//	POST /ring/members {"members"}   replace membership (triggers rebalance
//	                                 in the caller; see Rebalance)
//	POST /ring/migrate {"home","target"}  migrate one home off this node
//	POST /ring/transfer/{home}?migration=  target side of a migration
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		n.handleHealthz(w, r)
	case path == "/readyz":
		n.handleReadyz(w, r)
	case path == "/ring" && r.Method == http.MethodGet:
		n.handleRingStatus(w, r)
	case path == "/ring/members" && r.Method == http.MethodPost:
		n.handleSetMembers(w, r)
	case path == "/ring/migrate" && r.Method == http.MethodPost:
		n.handleMigrate(w, r)
	case strings.HasPrefix(path, "/ring/transfer/") && r.Method == http.MethodPost:
		n.handleTransfer(w, r)
	case path == "/metrics":
		n.handleMetrics(w, r)
	default:
		if home := homeFromPath(path); home != "" {
			if owner := n.Owner(home); owner != "" && owner != n.self {
				n.redirect(w, r, owner)
				return
			}
		}
		n.inner.ServeHTTP(w, r)
	}
}

// homeFromPath extracts the {home} segment of /fleet/homes/{home}[/...].
func homeFromPath(path string) string {
	rest, ok := strings.CutPrefix(path, "/fleet/homes/")
	if !ok || rest == "" {
		return ""
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// redirect answers 307 with the owner's address, preserving method, path and
// body (clients with GetBody re-send POST bodies on 307 automatically).
func (n *Node) redirect(w http.ResponseWriter, r *http.Request, owner string) {
	target := "http://" + owner + r.URL.RequestURI()
	w.Header().Set("X-Ring-Owner", owner)
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

func (n *Node) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

type readyBody struct {
	Ready   bool   `json:"ready"`
	Reason  string `json:"reason,omitempty"`
	Sealed  int    `json:"sealed_homes"`
	Members int    `json:"ring_members"`
}

func (n *Node) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := readyBody{Ready: true, Sealed: n.hub.SealedHomes(), Members: len(n.ring.Members())}
	if n.draining.Load() {
		body.Ready = false
		body.Reason = "draining"
	} else if sh, ok := n.hub.StoreHealth(); ok && sh.Degraded {
		body.Ready = false
		body.Reason = "store degraded"
	}
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

type ringStatus struct {
	Self      string            `json:"self"`
	Members   []string          `json:"members"`
	Homes     int               `json:"homes"`
	Sealed    int               `json:"sealed_homes"`
	Overrides map[string]string `json:"overrides,omitempty"`
}

func (n *Node) handleRingStatus(w http.ResponseWriter, _ *http.Request) {
	homes, err := n.hub.Homes()
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	}
	st := ringStatus{Self: n.self, Members: n.ring.Members(), Homes: len(homes), Sealed: n.hub.SealedHomes()}
	n.mu.RLock()
	if len(n.overrides) > 0 {
		st.Overrides = make(map[string]string, len(n.overrides))
		for h, o := range n.overrides {
			st.Overrides[h] = o
		}
	}
	n.mu.RUnlock()
	writeJSON(w, http.StatusOK, st)
}

type membersRequest struct {
	Members []string `json:"members"`
}

func (n *Node) handleSetMembers(w http.ResponseWriter, r *http.Request) {
	var req membersRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<10)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if len(req.Members) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "ring: empty membership"})
		return
	}
	n.ring.SetMembers(req.Members)
	// Membership changed: migrate every resident home whose hash owner is no
	// longer this node. Runs in the background — the rebalance is a sequence
	// of individually-converging migrations, not a transaction. The context
	// must outlive this request: net/http cancels r.Context() when the
	// handler returns, which would cancel every transfer mid-rebalance.
	ctx := context.WithoutCancel(r.Context())
	go func() {
		if err := n.Rebalance(ctx); err != nil {
			log.Printf("ring: rebalance after membership change on %s: %v", n.self, err)
		}
	}()
	writeJSON(w, http.StatusOK, membersRequest{Members: n.ring.Members()})
}

type migrateRequest struct {
	Home   string `json:"home"`
	Target string `json:"target"`
}

type migrateResponse struct {
	Home   string `json:"home"`
	Target string `json:"target"`
}

func (n *Node) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var req migrateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<10)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if req.Home == "" || req.Target == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "ring: migrate needs home and target"})
		return
	}
	if err := n.Migrate(r.Context(), req.Home, req.Target); err != nil {
		writeJSON(w, statusOf(err), errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, migrateResponse{Home: req.Home, Target: req.Target})
}

// transferAck is the target's answer to a completed transfer. Lines echoes
// how many records the target holds for this migration id; the source
// releases ownership only when it matches what it sent (the replay-end
// trailer check, round-tripped).
type transferAck struct {
	Home      string `json:"home"`
	Migration string `json:"migration"`
	Lines     uint64 `json:"lines"`
	// Applied is false when this delivery was a duplicate of an
	// already-applied transfer.
	Applied bool `json:"applied"`
}

// handleTransfer is the target side of a migration: decode the record
// stream (trailer-validated — a stream cut short by a dying source answers
// 400 and is never partially applied), import the home wholesale, remember
// the migration id, and ack with the line count.
func (n *Node) handleTransfer(w http.ResponseWriter, r *http.Request) {
	home := strings.TrimPrefix(r.URL.Path, "/ring/transfer/")
	mig := r.URL.Query().Get("migration")
	if home == "" || strings.Contains(home, "/") || mig == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "ring: transfer needs /ring/transfer/{home}?migration="})
		return
	}
	if err := n.hook("received"); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	recs, _, err := logserver.ReadReplayStream(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	lines := uint64(len(recs))

	n.transferMu.Lock()
	defer n.transferMu.Unlock()

	n.mu.RLock()
	mark, done := n.imports[home]
	n.mu.RUnlock()
	if done && mark.migration == mig {
		writeJSON(w, http.StatusOK, transferAck{Home: home, Migration: mig, Lines: mark.lines, Applied: false})
		return
	}

	exp := &fleet.HomeExport{Home: home}
	for _, rec := range recs {
		if rec.Home != home {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("ring: transfer for %q carries record of %q", home, rec.Home)})
			return
		}
		if rec.Kind == fleet.RecordMigrationState {
			st := &engine.StateExport{}
			if err := json.Unmarshal(rec.State, st); err != nil {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
				return
			}
			exp.State = st
			continue
		}
		exp.Records = append(exp.Records, rec)
	}

	if err := n.hook("pre-import"); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if err := n.hub.ImportHome(exp); err != nil {
		writeJSON(w, statusOf(err), errorBody{Error: err.Error()})
		return
	}
	// A kill here (post-import, pre-mark) loses the idempotency mark but not
	// the import: the source's retry re-imports wholesale onto the same
	// records — convergent, because the target serves nothing for this home
	// until the source releases.
	if err := n.hook("post-import"); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	n.mu.Lock()
	n.imports[home] = importMark{migration: mig, lines: lines}
	n.overrides[home] = n.self
	n.mu.Unlock()
	n.hub.MetricsRegistry().Migration.Imported.Inc()
	if err := n.hook("pre-ack"); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, transferAck{Home: home, Migration: mig, Lines: lines, Applied: true})
}

// handleMetrics serves the hub's exposition and appends the per-node ring
// gauges (the inner handler streams without Content-Length, so appending to
// the same response is safe).
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n.inner.ServeHTTP(w, r)
	homes, err := n.hub.Homes()
	if err != nil {
		return
	}
	n.mu.RLock()
	overrides := len(n.overrides)
	n.mu.RUnlock()
	fmt.Fprintf(w, "# HELP cadel_ring_members Ring membership size as this node sees it.\n")
	fmt.Fprintf(w, "# TYPE cadel_ring_members gauge\ncadel_ring_members %d\n", len(n.ring.Members()))
	fmt.Fprintf(w, "# HELP cadel_ring_homes_owned Homes resident on this node.\n")
	fmt.Fprintf(w, "# TYPE cadel_ring_homes_owned gauge\ncadel_ring_homes_owned %d\n", len(homes))
	fmt.Fprintf(w, "# HELP cadel_ring_homes_sealed Homes sealed for migration on this node.\n")
	fmt.Fprintf(w, "# TYPE cadel_ring_homes_sealed gauge\ncadel_ring_homes_sealed %d\n", n.hub.SealedHomes())
	fmt.Fprintf(w, "# HELP cadel_ring_ownership_overrides Post-migration ownership overrides held.\n")
	fmt.Fprintf(w, "# TYPE cadel_ring_ownership_overrides gauge\ncadel_ring_ownership_overrides %d\n", overrides)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, fleet.ErrNoHome):
		return http.StatusNotFound
	case errors.Is(err, fleet.ErrHomeSealed),
		errors.Is(err, fleet.ErrStoreDegraded),
		errors.Is(err, fleet.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrMigrationInFlight):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}
