package ring

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// noRedirect returns the 307 itself instead of following it.
var noRedirect = &http.Client{
	CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := noRedirect.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := noRedirect.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestNodeRouting: requests for an owned home pass through; requests for a
// peer's home answer 307 with the owner's address; the probes answer on both.
func TestNodeRouting(t *testing.T) {
	tp := &tap{}
	a, b := newTestNode(t, tp), newTestNode(t, tp)
	peers := []string{a.addr, b.addr}
	a.start(peers)
	b.start(peers)

	// Find one home each way on the shared ring.
	var ownedByA, ownedByB string
	for i := 0; ownedByA == "" || ownedByB == ""; i++ {
		if i > 10000 {
			t.Fatal("no home split found")
		}
		home := fmt.Sprintf("home-%d", i)
		switch a.node().Owner(home) {
		case a.addr:
			ownedByA = home
		case b.addr:
			ownedByB = home
		}
	}

	// Owned home: request passes through to the fleet handler (404 — the
	// home does not exist yet, which proves the hub answered, not the ring;
	// the trace route is the one that 404s instead of materializing).
	resp, _ := get(t, a.srv.URL+"/fleet/homes/"+ownedByA+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("owned home: %d, want 404 from the hub", resp.StatusCode)
	}

	// Peer's home: 307 with the owner's address.
	resp, _ = get(t, a.srv.URL+"/fleet/homes/"+ownedByB+"/trace")
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("peer home: %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, b.addr) {
		t.Errorf("Location = %q, want owner %s", loc, b.addr)
	}
	if owner := resp.Header.Get("X-Ring-Owner"); owner != b.addr {
		t.Errorf("X-Ring-Owner = %q, want %s", owner, b.addr)
	}

	// Following the redirect lands on the owner's hub.
	resp, err := http.Get(a.srv.URL + "/fleet/homes/" + ownedByB + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("followed redirect: %d, want 404 from owner's hub", resp.StatusCode)
	}

	// Non-home fleet routes are served locally, never redirected.
	resp, _ = get(t, a.srv.URL+"/fleet/homes")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /fleet/homes: %d", resp.StatusCode)
	}
}

// TestNodeProbes: /healthz is pure liveness; /readyz flips on draining and
// reports ring facts.
func TestNodeProbes(t *testing.T) {
	tp := &tap{}
	a := newTestNode(t, tp)
	a.start([]string{a.addr})

	resp, body := get(t, a.srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, a.srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz: %d %s", resp.StatusCode, body)
	}
	var rb readyBody
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatal(err)
	}
	if !rb.Ready || rb.Members != 1 {
		t.Errorf("ready body = %+v", rb)
	}

	a.node().SetDraining(true)
	resp, body = get(t, a.srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: %d, want 503", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Ready || rb.Reason != "draining" {
		t.Errorf("draining body = %+v", rb)
	}
	a.node().SetDraining(false)
	if resp, _ = get(t, a.srv.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("undrained readyz: %d", resp.StatusCode)
	}
}

// TestSealedHomeAnswers503: while a home is sealed for migration, external
// posts answer 503 with a Retry-After hint, through the full HTTP stack.
func TestSealedHomeAnswers503(t *testing.T) {
	tp := &tap{}
	a := newTestNode(t, tp)
	a.start([]string{a.addr})
	seedHome(t, a.hub(), "h1")

	if err := a.hub().SealHome("h1"); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, a.srv.URL+"/fleet/homes/h1/events",
		`{"deviceType":"thermometer","name":"thermometer","location":"living room","vars":{"temperature":"31"},"sync":true}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sealed post: %d %s, want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive hint", ra)
	}
	if !strings.Contains(body, "sealed") {
		t.Errorf("error body %q does not mention the seal", body)
	}

	// Mutations are refused too.
	resp, _ = post(t, a.srv.URL+"/fleet/homes/h1/rules", `{"source":"`+hotRule+`","owner":"tom"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("sealed submit: %d, want 503", resp.StatusCode)
	}

	a.hub().UnsealHome("h1")
	resp, _ = post(t, a.srv.URL+"/fleet/homes/h1/events",
		`{"deviceType":"thermometer","name":"thermometer","location":"living room","vars":{"temperature":"31"},"sync":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("unsealed post: %d, want 200", resp.StatusCode)
	}
}

// TestMetricsCarriesRingGauges: /metrics keeps the hub exposition and gains
// the per-node ring gauges.
func TestMetricsCarriesRingGauges(t *testing.T) {
	tp := &tap{}
	a := newTestNode(t, tp)
	a.start([]string{a.addr})
	seedHome(t, a.hub(), "h1")

	_, body := get(t, a.srv.URL+"/metrics")
	for _, want := range []string{
		"cadel_homes 1",
		"cadel_ring_members 1",
		"cadel_ring_homes_owned 1",
		"cadel_ring_homes_sealed 0",
		"cadel_ring_ownership_overrides 0",
		"# TYPE cadel_engine_passes_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRingStatusEndpoint: GET /ring reports membership and residency.
func TestRingStatusEndpoint(t *testing.T) {
	tp := &tap{}
	a := newTestNode(t, tp)
	a.start([]string{a.addr})
	seedHome(t, a.hub(), "h1")

	resp, body := get(t, a.srv.URL+"/ring")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /ring: %d", resp.StatusCode)
	}
	var st ringStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Self != a.addr || st.Homes != 1 || len(st.Members) != 1 {
		t.Errorf("ring status = %+v", st)
	}
}
