package ring

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// engineStripe is the engine-counter slice of the obs totals that migration
// must preserve: quiet import and quiet boot replay contribute zero, so the
// sum across source and target equals a never-migrated twin exactly.
// StoreAppends is deliberately excluded — the target re-appends the imported
// records to its own store, so the fleet legitimately writes more journal
// records than the twin.
type engineStripe struct {
	Passes, RulesChecked, RulesFired, RulesSuppressed, DispatchBatches uint64
}

func stripeOf(t obs.Totals) engineStripe {
	return engineStripe{t.Passes, t.RulesChecked, t.RulesFired, t.RulesSuppressed, t.DispatchBatches}
}

func addStripes(a, b engineStripe) engineStripe {
	return engineStripe{
		a.Passes + b.Passes,
		a.RulesChecked + b.RulesChecked,
		a.RulesFired + b.RulesFired,
		a.RulesSuppressed + b.RulesSuppressed,
		a.DispatchBatches + b.DispatchBatches,
	}
}

// setupHandoffHome seeds the paper's Fig. 1 stereo scenario on a hub: two
// users, two competing stereo rules, a contextual priority favoring emily
// while she is in the living room.
func setupHandoffHome(t *testing.T, h *fleet.Hub, home string) {
	t.Helper()
	for _, u := range []string{"alan", "emily"} {
		if err := h.RegisterUser(home, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Submit(home, "If alan is in the living room, turn on the stereo.", "alan"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Submit(home, "If emily is in the living room, turn on the stereo.", "emily"); err != nil {
		t.Fatal(err)
	}
	if err := h.SetPriority(home, core.DeviceRef{Name: "stereo"}, []string{"emily", "alan"},
		"emily is in the living room"); err != nil {
		t.Fatal(err)
	}
}

func postPresence(t *testing.T, h *fleet.Hub, home string, vars map[string]string) {
	t.Helper()
	if err := h.PostEventSync(home, device.TypePresenceSensor, "presence sensor", "home", vars); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationObsParityAndHandoffTrace: after a home moves mid-scenario,
// (a) the engine stripe totals summed over source and target equal the
// single-hub twin's — the observability proof that migration neither lost
// nor double-counted an evaluation — and (b) the trace endpoint on the NEW
// owner still explains the Fig. 1 stereo hand-off, because the migrated
// context (alan already present) fed the arbitration that ran after the
// move.
func TestMigrationObsParityAndHandoffTrace(t *testing.T) {
	home := "h1"

	twinTap := &tap{}
	twin, err := fleet.NewHub(
		fleet.WithShards(1),
		fleet.WithClock(testClock()),
		fleet.WithDispatcher(twinTap.dispatch),
		fleet.WithLogLimit(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = twin.Close() }()

	fleetTap := &tap{}
	a, b := newTestNode(t, fleetTap), newTestNode(t, fleetTap)
	a.shards, b.shards = 1, 1
	peers := []string{a.addr, b.addr}
	a.start(peers)
	b.start(peers)

	// Act one on A (and the twin): alan alone takes the stereo.
	setupHandoffHome(t, a.hub(), home)
	setupHandoffHome(t, twin, home)
	postPresence(t, a.hub(), home, map[string]string{"presence-alan": "living room"})
	postPresence(t, twin, home, map[string]string{"presence-alan": "living room"})

	// The home moves mid-scenario.
	if err := a.node().Migrate(context.Background(), home, b.addr); err != nil {
		t.Fatal(err)
	}

	// Act two on B: emily walks in; the contextual order hands the stereo to
	// her — an arbitration that only works if alan's presence migrated.
	postPresence(t, b.hub(), home, map[string]string{"presence-emily": "living room"})
	postPresence(t, twin, home, map[string]string{"presence-emily": "living room"})

	// (a) Stripe parity: source + target == twin.
	got := addStripes(stripeOf(a.hub().Metrics().Totals()), stripeOf(b.hub().Metrics().Totals()))
	want := stripeOf(twin.Metrics().Totals())
	if got != want {
		t.Errorf("engine stripes diverged:\n fleet: %+v\n twin:  %+v", got, want)
	}
	if want.RulesFired == 0 || want.RulesSuppressed == 0 {
		t.Fatalf("vacuous scenario: twin stripes %+v", want)
	}

	// (b) The new owner's trace endpoint explains the hand-off.
	resp, err := http.Get(b.srv.URL + "/fleet/homes/" + home + "/trace?device=stereo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace on new owner: %d", resp.StatusCode)
	}
	var traces []engine.PassTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	var handoff *engine.TraceDecision
	for i := range traces {
		for j := range traces[i].Decisions {
			d := &traces[i].Decisions[j]
			if d.Winner == "emily-2" && len(d.Losers) > 0 {
				handoff = d
			}
		}
	}
	if handoff == nil {
		t.Fatalf("no hand-off decision on new owner: %+v", traces)
	}
	if handoff.Device != "stereo" || !handoff.Fired || handoff.Owner != "emily" {
		t.Errorf("hand-off = %+v", handoff)
	}
	if handoff.Losers[0].Rule != "alan-1" || handoff.Losers[0].Owner != "alan" {
		t.Errorf("losers = %+v, want alan-1", handoff.Losers)
	}
	if !strings.Contains(handoff.Reason, `"emily"`) ||
		!strings.Contains(handoff.Reason, "#1") ||
		!strings.Contains(handoff.Reason, "emily is in the living room") {
		t.Errorf("reason = %q, want emily ranked #1 under the contextual order", handoff.Reason)
	}

	// Migration surfaced in the migration counters on both sides.
	srcM := &a.hub().MetricsRegistry().Migration
	dstM := &b.hub().MetricsRegistry().Migration
	if srcM.Started.Load() != 1 || srcM.Completed.Load() != 1 || srcM.Failed.Load() != 0 {
		t.Errorf("source migration counters: started=%d completed=%d failed=%d",
			srcM.Started.Load(), srcM.Completed.Load(), srcM.Failed.Load())
	}
	if dstM.Imported.Load() != 1 {
		t.Errorf("target imported = %d, want 1", dstM.Imported.Load())
	}
	if srcM.DurationNs.Count() != 1 {
		t.Errorf("migration duration observations = %d, want 1", srcM.DurationNs.Count())
	}
}
