package ring

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: every member computes the identical ring regardless
// of input order or duplicates — the property that lets nodes route without
// consensus.
func TestRingDeterminism(t *testing.T) {
	a := New("n1:1", "n2:2", "n3:3")
	b := New("n3:3", "n1:1", "n2:2", "n2:2", "")
	for i := 0; i < 1000; i++ {
		home := fmt.Sprintf("home-%04d", i)
		if a.Owner(home) != b.Owner(home) {
			t.Fatalf("owner(%s) differs: %q vs %q", home, a.Owner(home), b.Owner(home))
		}
	}
	if got, want := fmt.Sprint(a.Members()), fmt.Sprint(b.Members()); got != want {
		t.Errorf("members %s vs %s", got, want)
	}
}

// TestRingDistribution: 64 vnodes/member keep ownership within a loose but
// meaningful band of uniform for a small fleet.
func TestRingDistribution(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r := New(members...)
	counts := map[string]int{}
	const homes = 8000
	for i := 0; i < homes; i++ {
		counts[r.Owner(fmt.Sprintf("home-%05d", i))]++
	}
	want := homes / len(members)
	for _, m := range members {
		if counts[m] < want/2 || counts[m] > want*2 {
			t.Errorf("member %s owns %d homes, want within [%d, %d]", m, counts[m], want/2, want*2)
		}
	}
}

// TestRingMinimalMovement: removing one member moves only that member's
// homes; everyone else's stay put.
func TestRingMinimalMovement(t *testing.T) {
	before := New("a:1", "b:2", "c:3", "d:4")
	after := New("a:1", "b:2", "c:3")
	moved, kept := 0, 0
	for i := 0; i < 4000; i++ {
		home := fmt.Sprintf("home-%05d", i)
		was, is := before.Owner(home), after.Owner(home)
		if was == "d:4" {
			if is == "d:4" {
				t.Fatalf("%s still owned by removed member", home)
			}
			moved++
			continue
		}
		if was != is {
			t.Errorf("%s moved %s -> %s without its owner leaving", home, was, is)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

// TestRingEmptyAndSingle: edge memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := New().Owner("h"); got != "" {
		t.Errorf("empty ring owner = %q", got)
	}
	solo := New("only:1")
	for i := 0; i < 100; i++ {
		if got := solo.Owner(fmt.Sprintf("h%d", i)); got != "only:1" {
			t.Fatalf("single-member ring routed %q elsewhere: %q", fmt.Sprintf("h%d", i), got)
		}
	}
}
