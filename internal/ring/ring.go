// Package ring places homes on a fleet of hub processes with a consistent-
// hash ring and choreographs live home migration between them.
//
// Placement: every member (a `cmd/homeserver -fleet` process, addressed as
// host:port) projects a fixed number of virtual nodes onto a 64-bit hash
// circle; a home belongs to the member owning the first virtual node at or
// clockwise-after the home's hash. Adding or removing a member moves only
// the homes between the affected virtual nodes — the property that makes
// rebalancing a set of migrations instead of a full reshuffle.
//
// Routing: a Node wraps its hub's fleet HTTP handler. Requests for a home
// the node owns pass through; requests for anyone else's home answer
// 307 Temporary Redirect with the owner's address, so any node is a valid
// entry point and clients converge on the owner in one hop (two during a
// migration, while an ownership override points at the new owner before the
// hash says so).
//
// Migration (see migrate.go): seal → drain → snapshot → transfer → replay →
// ack → release, idempotent per migration id, fault-tested under transport
// resets, duplicated deliveries, injected 500s and process kills at every
// protocol step.
package ring

import (
	"sort"
	"strconv"
	"sync"
)

// vnodesPerMember is how many virtual nodes each member projects onto the
// circle. 64 keeps the ownership spread within a few percent of uniform for
// small fleets while keeping SetMembers (sort of members×64 hashes) cheap.
const vnodesPerMember = 64

type vnode struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over member addresses. The zero value is
// unusable; build with New. All methods are safe for concurrent use.
type Ring struct {
	mu      sync.RWMutex
	members []string
	vnodes  []vnode // sorted by hash
}

// New builds a ring over the given members (duplicates ignored).
func New(members ...string) *Ring {
	r := &Ring{}
	r.SetMembers(members)
	return r
}

// SetMembers replaces the ring's membership.
func (r *Ring) SetMembers(members []string) {
	seen := make(map[string]struct{}, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, dup := seen[m]; dup {
			continue
		}
		seen[m] = struct{}{}
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	vnodes := make([]vnode, 0, len(uniq)*vnodesPerMember)
	for _, m := range uniq {
		for i := 0; i < vnodesPerMember; i++ {
			vnodes = append(vnodes, vnode{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(vnodes, func(i, j int) bool {
		if vnodes[i].hash != vnodes[j].hash {
			return vnodes[i].hash < vnodes[j].hash
		}
		// Hash ties (vanishingly rare) break by address so every member
		// computes the identical ring.
		return vnodes[i].member < vnodes[j].member
	})
	r.mu.Lock()
	r.members = uniq
	r.vnodes = vnodes
	r.mu.Unlock()
}

// Members returns the current membership, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.members...)
}

// Owner returns the member owning home — the first virtual node clockwise
// from the home's hash — or "" on an empty ring.
func (r *Ring) Owner(home string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hash64(home)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap around the circle
	}
	return r.vnodes[i].member
}

// hash64 is FNV-1a, the same family the hub's shard router uses; inlined so
// the ring shares no allocation with hash/fnv's interface indirection.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
