// Security: runs the paper's example rules (2) and (3) from Sect. 4.2 —
//
//	(2) "After evening, if someone returns home and the hall is dark, turn
//	    on the light at the hall."
//	(3) "At night, if entrance door is unlocked for 1 hour, turn on the
//	    alarm."
//
// — against the simulated home, exercising arrival events, boolean room
// state, time windows and duration conditions.
package main

import (
	"fmt"
	"log"
	"time"

	cadel "repro"
	"repro/internal/device"
	"repro/internal/home"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := cadel.NewNetwork()
	hm, err := home.New(network, home.DefaultConfig()) // starts 17:00, hall dark
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	srv, err := cadel.NewServer(network,
		cadel.WithClock(hm.Clock.Now),
		cadel.WithOnFire(func(f cadel.Fired) { fmt.Println("fired:", f) }),
	)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	if err := srv.RegisterUser("tom"); err != nil {
		return err
	}
	if _, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		return err
	}

	for _, src := range []string{
		"After evening, if someone returns home and the hall is dark, turn on the light at the hall.",
		"At night, if entrance door is unlocked for 1 hour, turn on the alarm.",
	} {
		if _, err := srv.Submit(src, "tom"); err != nil {
			return fmt.Errorf("submit %q: %w", src, err)
		}
		fmt.Println("registered:", src)
	}

	// 18:30: Tom comes home to a dark hall → rule (2).
	hm.Clock.Set(time.Date(2005, 3, 7, 18, 30, 0, 0, time.UTC))
	fmt.Println("\n18:30 — tom returns home, hall is dark")
	if err := hm.Arrive("tom", "hall", "return-home"); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)
	light, _ := hm.Appliance("hall", "light")
	power, _ := light.Get(device.SvcSwitchPower, "power")
	fmt.Printf("hall light: power=%s\n", power)

	// 23:00: the door is left unlocked → rule (3) after an hour.
	fmt.Println("\n23:00 — entrance door left unlocked")
	hm.Clock.Set(time.Date(2005, 3, 7, 23, 0, 0, 0, time.UTC))
	srv.Tick()
	door, _ := hm.Appliance("entrance", "entrance door")
	if err := door.Set(device.SvcLock, "locked", "0"); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)

	alarm, _ := hm.Appliance("hall", "alarm")
	for _, mins := range []int{30, 31} {
		hm.Clock.Advance(time.Duration(mins) * time.Minute)
		srv.Tick()
		time.Sleep(200 * time.Millisecond)
		state, _ := alarm.Get(device.SvcSwitchPower, "power")
		fmt.Printf("%s — alarm: power=%s\n", hm.Clock.Now().Format("15:04"), state)
	}
	return nil
}
