// Quickstart: build a one-room home, register a CADEL rule, trip it with a
// sensor reading, and watch the air conditioner respond.
package main

import (
	"fmt"
	"log"
	"time"

	cadel "repro"
	"repro/internal/device"
	"repro/internal/home"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A LAN segment with one simulated room full of virtual UPnP devices.
	network := cadel.NewNetwork()
	cfg := home.Config{
		Start: time.Date(2026, 6, 10, 14, 0, 0, 0, time.UTC),
		Rooms: []home.RoomConfig{{Name: "living room", Temperature: 24, Humidity: 55}},
		Users: []string{"sam"},
		Appliances: []home.ApplianceConfig{
			{Kind: home.KindAirConditioner, Room: "living room"},
		},
		OutdoorTemperature: 30,
		OutdoorHumidity:    70,
	}
	hm, err := home.New(network, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	// The home server: discovery, rule DB, conflict checks, execution.
	srv, err := cadel.NewServer(network,
		cadel.WithClock(hm.Clock.Now),
		cadel.WithOnFire(func(f cadel.Fired) { fmt.Println("fired:", f) }),
	)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	if err := srv.RegisterUser("sam"); err != nil {
		return err
	}
	n, err := srv.DiscoverDevices(500 * time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("discovered %d devices\n", n)

	// One CADEL sentence is the whole automation.
	res, err := srv.Submit(
		"If temperature is higher than 28 degrees and humidity is higher than 60 percent, "+
			"turn on the air conditioner with 25 degrees of temperature setting.", "sam")
	if err != nil {
		return err
	}
	fmt.Printf("registered: %s\n", res.Rule.Source)

	// A heat wave rolls in.
	if err := hm.SetClimate("living room", 29, 65); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // UPnP events are asynchronous

	ac, _ := hm.Appliance("living room", "air conditioner")
	power, _ := ac.Get(device.SvcSwitchPower, "power")
	target, _ := ac.Get(device.SvcThermostat, "target-temperature")
	fmt.Printf("air conditioner: power=%s target=%s°C\n", power, target)

	// The conditioner pulls the room back toward its target.
	for i := 0; i < 3; i++ {
		if err := hm.Step(30 * time.Minute); err != nil {
			return err
		}
	}
	temp, humid, _ := hm.Climate("living room")
	fmt.Printf("after 90 minutes: %.1f°C %.0f%%\n", temp, humid)
	return nil
}
