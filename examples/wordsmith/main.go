// Wordsmith: the rule-description support workflow of Sect. 4.3 and
// Figs. 4-7 — defining new condition and configuration words, retrieving
// sensors by sensor type and by word, reverse-looking-up words from a
// device, listing a device's allowed actions, and resolving a detected
// conflict with a priority order.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	cadel "repro"
	"repro/internal/home"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := cadel.NewNetwork()
	hm, err := home.New(network, home.DefaultConfig())
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	srv, err := cadel.NewServer(network, cadel.WithClock(hm.Clock.Now))
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			return err
		}
	}
	if _, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		return err
	}

	// --- define new words (Fig. 4) ---
	fmt.Println("== defining words ==")
	for _, def := range []string{
		"Let's call the condition that humidity is higher than 60 % and temperature is higher than 28 degrees hot and stuffy",
		"Let's call the configuration that 50 percent of brightness setting half-lighting",
	} {
		res, err := srv.Submit(def, "tom")
		if err != nil {
			return err
		}
		fmt.Printf("  defined %q\n", res.DefinedWord)
	}

	// --- retrieval (Fig. 5): by sensor type, then by the new word ---
	fmt.Println("\n== retrieval by sensor type \"temperature\" ==")
	for _, d := range srv.Find(cadel.Query{SensorType: "temperature"}) {
		fmt.Printf("  %-20s at %s\n", d.FriendlyName, d.Location)
	}
	fmt.Println("\n== retrieval by word \"hot and stuffy\" ==")
	for _, d := range srv.Find(cadel.Query{Word: "hot and stuffy", Location: "living room"}) {
		fmt.Printf("  %-20s at %s\n", d.FriendlyName, d.Location)
	}

	// --- reverse lookup: device → words ---
	thermo := srv.Find(cadel.Query{Name: "thermometer", Location: "living room"})
	if len(thermo) == 1 {
		fmt.Printf("\n== words involving the living-room thermometer ==\n  %s\n",
			strings.Join(srv.WordsFor(thermo[0]), ", "))
	}

	// --- action retrieval (Fig. 6): what can the air conditioner do? ---
	ac, err := srv.FindDevice("air conditioner", time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("\n== allowed actions of the air conditioner ==\n  %s\n",
		strings.Join(srv.AllowedVerbs(ac), ", "))

	// --- conflicting rules and priority setup (Fig. 7) ---
	fmt.Println("\n== conflicting rules ==")
	if _, err := srv.Submit(
		"If hot and stuffy, turn on the air conditioner with 25 degrees of temperature setting.", "tom"); err != nil {
		return err
	}
	res, err := srv.Submit(
		"If temperature is higher than 27 degrees, turn on the air conditioner with 23 degrees of temperature setting.", "alan")
	if err != nil {
		return err
	}
	for _, c := range res.Conflicts {
		fmt.Printf("  detected: %s\n", c)
	}
	if err := srv.SetPriority(cadel.DeviceRef{Name: "air conditioner"},
		[]string{"alan", "tom"}, ""); err != nil {
		return err
	}
	fmt.Println("  resolved with priority alan > tom")
	for _, o := range srv.PriorityOrders(cadel.DeviceRef{Name: "air conditioner"}) {
		fmt.Printf("  order: %s\n", o)
	}

	// --- export the rule database (Sect. 4.3(iv)) ---
	data, err := srv.ExportRules()
	if err != nil {
		return err
	}
	fmt.Printf("\n== exported rule database ==\n%s\n", data)
	return nil
}
