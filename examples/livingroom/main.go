// Livingroom: the paper's full Sect. 3.1 household — Tom, Alan and Emily's
// preferences as CADEL rules, context-attached priorities, and the Fig. 1
// evening replayed minute by minute with the physics simulation driving the
// climate (instead of scripted overrides).
package main

import (
	"fmt"
	"log"
	"time"

	cadel "repro"
	"repro/internal/home"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := cadel.NewNetwork()
	cfg := home.DefaultConfig()
	// A hot, humid summer evening so the comfort rules trip naturally.
	cfg.OutdoorTemperature = 32
	cfg.OutdoorHumidity = 82
	cfg.Rooms[0].Temperature = 26
	cfg.Rooms[0].Humidity = 63
	hm, err := home.New(network, cfg)
	if err != nil {
		return err
	}
	defer func() { _ = hm.Close() }()

	srv, err := cadel.NewServer(network,
		cadel.WithClock(hm.Clock.Now),
		cadel.WithEventTTL(6*time.Hour),
		cadel.WithOnFire(func(f cadel.Fired) { fmt.Println("  " + f.String()) }),
	)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	for _, u := range []string{"tom", "alan"} {
		if err := srv.RegisterUser(u); err != nil {
			return err
		}
	}
	if err := srv.RegisterUser("emily", "roman holiday"); err != nil {
		return err
	}
	if _, err := srv.DiscoverDevices(700 * time.Millisecond); err != nil {
		return err
	}

	submissions := []struct{ src, owner string }{
		// Comfort vocabularies (Sect. 3.1's per-user thresholds).
		{"Let's call the condition that temperature is higher than 26 degrees and humidity is higher than 65 percent hot and stuffy", "tom"},
		{"Let's call the condition that temperature is higher than 25 degrees and humidity is higher than 60 percent muggy", "alan"},
		{"Let's call the condition that temperature is higher than 29 degrees and humidity is higher than 75 percent sticky", "emily"},
		{"Let's call the configuration that 50 percent of brightness setting half-lighting", "tom"},
		// Tom.
		{"In the evening, if i am in the living room, play the stereo with jazz of mode setting and 40 percent of volume setting.", "tom"},
		{"When i am in the living room, turn on the floor lamp with half-lighting.", "tom"},
		{"If i am in the living room and hot and stuffy, turn on the air conditioner at the living room with 25 degrees of temperature setting and 60 percent of humidity setting.", "tom"},
		// Alan.
		{"If i am in the living room and a baseball game is on air, turn on the tv with 1 of channel setting.", "alan"},
		{"If emily is in the living room and a baseball game is on air, record the video recorder.", "alan"},
		{"If i am in the living room and muggy, turn on the air conditioner at the living room with 24 degrees of temperature setting and 55 percent of humidity setting.", "alan"},
		// Emily.
		{"If i am in the living room and my favorite movie is on air, turn on the tv with 3 of channel setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, play the stereo with movie of mode setting.", "emily"},
		{"When i am in the living room and my favorite movie is on air, turn on the fluorescent light.", "emily"},
		{"If i am in the living room and sticky, turn on the air conditioner at the living room with 27 degrees of temperature setting and 65 percent of humidity setting.", "emily"},
	}
	conflicts := 0
	for _, s := range submissions {
		res, err := srv.Submit(s.src, s.owner)
		if err != nil {
			return fmt.Errorf("submit %q: %w", s.src, err)
		}
		conflicts += len(res.Conflicts)
	}
	fmt.Printf("registered %d rules (%d conflicts detected)\n", len(srv.Rules()), conflicts)

	priorities := []struct {
		device  string
		users   []string
		context string
	}{
		{"tv", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"tv", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
		{"stereo", []string{"emily", "tom", "alan"}, "emily got home from shopping"},
		{"air conditioner", []string{"alan", "tom", "emily"}, "alan got home from work"},
		{"air conditioner", []string{"emily", "alan", "tom"}, "emily got home from shopping"},
	}
	for _, p := range priorities {
		if err := srv.SetPriority(cadel.DeviceRef{Name: p.device}, p.users, p.context); err != nil {
			return err
		}
	}
	fmt.Printf("set %d priority orders\n\n", len(priorities))

	// Replay the evening in 15-minute steps; arrivals at 17:00 / 18:00 / 19:00.
	arrivals := map[string][2]string{
		"17:00": {"tom", "return-home"},
		"18:00": {"alan", "home-from-work"},
		"19:00": {"emily", "home-from-shopping"},
	}
	for hm.Clock.Now().Hour() < 20 {
		stamp := hm.Clock.Now().Format("15:04")
		if arr, ok := arrivals[stamp]; ok {
			fmt.Printf("%s  *%s arrives (%s)\n", stamp, arr[0], arr[1])
			if err := hm.Arrive(arr[0], "living room", arr[1]); err != nil {
				return err
			}
			time.Sleep(250 * time.Millisecond)
		}
		if err := hm.Step(15 * time.Minute); err != nil {
			return err
		}
		srv.Tick()
		time.Sleep(50 * time.Millisecond)
	}

	temp, humid, _ := hm.Climate("living room")
	fmt.Printf("\n20:00  living room settles at %.1f°C / %.0f%%\n", temp, humid)
	fmt.Printf("%d actions dispatched in total\n", len(srv.Log()))
	return nil
}
